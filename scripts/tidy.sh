#!/usr/bin/env sh
# Runs the curated clang-tidy set (.clang-tidy, tests/.clang-tidy) over
# the project's compilation database.
#
#   scripts/tidy.sh [--check] [build-dir]
#
# Default mode prints findings and exits 0 (exploration); --check
# promotes every finding to an error and exits nonzero on any (what
# CI's blocking tidy job runs). build-dir defaults to ./build and must
# contain compile_commands.json -- CMAKE_EXPORT_COMPILE_COMMANDS is
# always ON in this tree, so any configured build dir works.
#
# The clang-tidy major version is pinned (same policy as
# scripts/format.sh): check sets drift across releases, so an
# unpinned binary would let the gate's meaning change silently. Set
# CLANG_TIDY to override the binary. See docs/static-analysis.md.
set -eu

cd "$(dirname "$0")/.."

PINNED_MAJOR=18

# Accept an explicit override, the versioned name, or an unversioned
# binary whose --version reports the pinned major.
resolve_tidy() {
  if [ -n "${CLANG_TIDY:-}" ]; then
    echo "$CLANG_TIDY"
    return 0
  fi
  if command -v "clang-tidy-$PINNED_MAJOR" > /dev/null 2>&1; then
    echo "clang-tidy-$PINNED_MAJOR"
    return 0
  fi
  if command -v clang-tidy > /dev/null 2>&1; then
    major="$(clang-tidy --version 2> /dev/null |
      sed -n 's/.*version \([0-9]*\)\..*/\1/p' | head -n 1)"
    if [ "$major" = "$PINNED_MAJOR" ]; then
      echo "clang-tidy"
      return 0
    fi
    echo "error: clang-tidy major version ${major:-unknown} found, but" \
      "this tree pins clang-tidy-$PINNED_MAJOR" >&2
  else
    echo "error: no clang-tidy found (tried clang-tidy-$PINNED_MAJOR," \
      "clang-tidy)" >&2
  fi
  echo "hint: install clang-tidy-$PINNED_MAJOR (apt-get install" \
    "clang-tidy-$PINNED_MAJOR) or set CLANG_TIDY to a version-$PINNED_MAJOR" \
    "binary" >&2
  return 1
}

MODE="report"
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --check) MODE="check" ;;
    -*)
      echo "usage: scripts/tidy.sh [--check] [build-dir]" >&2
      exit 2
      ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "error: $BUILD_DIR/compile_commands.json not found" >&2
  echo "hint: configure first (cmake -B $BUILD_DIR -S .); the database" \
    "is exported unconditionally" >&2
  exit 1
fi

TIDY="$(resolve_tidy)"

# Only our own translation units: the database also carries the
# vendored GoogleTest sources, which are not ours to lint.
FILES="$(python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json
import os
import sys

root = os.getcwd()
ours = []
for entry in json.load(open(sys.argv[1])):
    path = os.path.normpath(
        os.path.join(entry.get("directory", ""), entry["file"]))
    rel = os.path.relpath(path, root)
    if rel.startswith(("src/", "tests/", "bench/")):
        ours.append(rel)
for path in sorted(set(ours)):
    print(path)
EOF
)"

if [ -z "$FILES" ]; then
  echo "error: no project sources in $BUILD_DIR/compile_commands.json" >&2
  exit 1
fi

# xargs exits 123 when any clang-tidy invocation fails, which is the
# blocking signal --check mode needs.
if [ "$MODE" = "check" ]; then
  echo "$FILES" | xargs -P "$(nproc)" -n 4 \
    "$TIDY" -p "$BUILD_DIR" -quiet "-warnings-as-errors=*"
else
  echo "$FILES" | xargs -P "$(nproc)" -n 4 \
    "$TIDY" -p "$BUILD_DIR" -quiet
fi
echo "tidy: clean ($(echo "$FILES" | wc -l) translation units)"
