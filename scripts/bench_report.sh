#!/usr/bin/env sh
# Runs every buildable bench with machine-readable reporting and
# validates the collected BENCH_<name>.json files.
#
#   scripts/bench_report.sh [build-dir] [output-dir]
#
# build-dir defaults to ./build, output-dir to the repo root (the
# BENCH_*.json files live next to README.md so a checkout carries the
# latest measured numbers). Hand-rolled benches emit through
# bench/report.h (PPSC_BENCH_JSON env); google-benchmark binaries (e11,
# e13) emit through --benchmark_out=json. Every bench also runs with
# PPSC_TRACE_JSON=<output-dir>/TRACE_<name>.json, so each run leaves a
# Perfetto-loadable Chrome trace next to its report; the traces are
# run artifacts (gitignored), not baselines.
#
# Every file is then validated with python3: parseable JSON plus the
# schema keys the downstream tooling (scripts/bench_compare.py) relies
# on, and the Chrome trace-event shape for the TRACE files. Metadata
# is wall-clock-free by construction: bench/report.h stamps git_rev /
# threads / obs_compiled and nothing time-of-day-shaped, and the
# google-benchmark context gets its `date` and `load_avg` stripped and
# the same git_rev/ppsc_obs stamps added, so regenerating baselines on
# the same commit and machine diffs clean. Any bench failure, missing
# file, or schema violation exits nonzero -- CI runs this as a
# blocking step.
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build dir '$BUILD_DIR' not found (configure+build first)" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
PPSC_OBS_STATE="$(sed -n 's/^PPSC_OBS:BOOL=//p' "$BUILD_DIR/CMakeCache.txt" \
  2>/dev/null || true)"
PPSC_OBS_STATE="${PPSC_OBS_STATE:-unknown}"

# The two bench families emit different schemas; validate each
# accordingly. google-benchmark's schema is pinned upstream, so only
# its presence markers (and our reproducibility stamps) are checked.
validate() {
  # $1 = json path, $2 = "report" | "gbench" | "trace"
  python3 - "$1" "$2" <<'EOF'
import json
import sys

path, kind = sys.argv[1], sys.argv[2]
with open(path) as f:
    data = json.load(f)
if kind == "report":
    required = ["bench", "git_rev", "threads", "obs_compiled", "wall_ms",
                "items_per_sec", "counters", "histograms"]
    missing = [key for key in required if key not in data]
    if missing:
        sys.exit(f"{path}: missing schema keys {missing}")
elif kind == "gbench":
    missing = [key for key in ["context", "benchmarks"] if key not in data]
    if missing:
        sys.exit(f"{path}: missing schema keys {missing}")
    ctx = data["context"]
    for stale in ("date", "load_avg"):
        if stale in ctx:
            sys.exit(f"{path}: context.{stale} not stripped")
    for stamp in ("git_rev", "ppsc_obs"):
        if stamp not in ctx:
            sys.exit(f"{path}: context.{stamp} stamp missing")
else:  # Chrome trace-event JSON (Perfetto-loadable)
    events = data.get("traceEvents")
    if not isinstance(events, list):
        sys.exit(f"{path}: no traceEvents array")
    for event in events:
        missing = [key for key in
                   ("name", "cat", "ph", "ts", "dur", "pid", "tid")
                   if key not in event]
        if missing:
            sys.exit(f"{path}: event missing {missing}: {event}")
        if event["ph"] != "X":
            sys.exit(f"{path}: unexpected phase {event['ph']!r}")
EOF
}

# Strip the wall-clock context fields google-benchmark stamps and add
# the reproducible ones bench/report.h uses, keeping both bench
# families' metadata on the same footing.
stamp_gbench() {
  # $1 = json path
  python3 - "$1" "$GIT_REV" "$PPSC_OBS_STATE" <<'EOF'
import json
import sys

path, git_rev, ppsc_obs = sys.argv[1], sys.argv[2], sys.argv[3]
with open(path) as f:
    data = json.load(f)
ctx = data.get("context", {})
ctx.pop("date", None)
ctx.pop("load_avg", None)
ctx["git_rev"] = git_rev
ctx["ppsc_obs"] = ppsc_obs
with open(path, "w") as f:
    json.dump(data, f, indent=1)
    f.write("\n")
EOF
}

status=0
ran=0

check_trace() {
  name="$1"
  trace="$2"
  if [ ! -s "$trace" ]; then
    echo "FAIL $name: no trace at $trace" >&2
    status=1
    return 0
  fi
  if ! validate "$trace" trace; then
    status=1
  fi
}

run_report_bench() {
  name="$1"
  bin="$BUILD_DIR/$name"
  json="$OUT_DIR/BENCH_$name.json"
  trace="$OUT_DIR/TRACE_$name.json"
  if [ ! -x "$bin" ]; then
    echo "skip $name (not built)"
    return 0
  fi
  echo "run  $name"
  if ! PPSC_BENCH_JSON="$json" PPSC_TRACE_JSON="$trace" "$bin" > /dev/null
  then
    echo "FAIL $name: bench exited nonzero" >&2
    status=1
    return 0
  fi
  if [ ! -s "$json" ]; then
    echo "FAIL $name: no report at $json" >&2
    status=1
    return 0
  fi
  if ! validate "$json" report; then
    status=1
    return 0
  fi
  check_trace "$name" "$trace"
  ran=$((ran + 1))
}

run_gbench_bench() {
  name="$1"
  bin="$BUILD_DIR/$name"
  json="$OUT_DIR/BENCH_$name.json"
  trace="$OUT_DIR/TRACE_$name.json"
  if [ ! -x "$bin" ]; then
    echo "skip $name (google-benchmark not available at configure time)"
    return 0
  fi
  echo "run  $name"
  if ! PPSC_TRACE_JSON="$trace" "$bin" --benchmark_min_time=0.01 \
      --benchmark_out="$json" --benchmark_out_format=json > /dev/null; then
    echo "FAIL $name: bench exited nonzero" >&2
    status=1
    return 0
  fi
  stamp_gbench "$json"
  if ! validate "$json" gbench; then
    status=1
    return 0
  fi
  check_trace "$name" "$trace"
  ran=$((ran + 1))
}

# Keep in sync with PPSC_BENCH_BUILDABLE in CMakeLists.txt.
for name in \
    e1_landscape e2_example41 e3_example42 e4_rackoff e5_stabilized \
    e6_bottom e7_euler e8_pottier e9_theorem43 e10_corollary44 \
    e12_convergence e14_width_ablation e15_scheduler_ablation \
    e16_wellspec e17_boolean_closure e18_exact_convergence \
    e19_census_profile; do
  run_report_bench "$name"
done

for name in e11_sim_throughput e13_coverability; do
  run_gbench_bench "$name"
done

if [ "$ran" -eq 0 ]; then
  echo "error: no bench produced a report" >&2
  exit 1
fi
if [ "$status" -ne 0 ]; then
  echo "bench report: FAILED" >&2
  exit "$status"
fi
echo "bench report: $ran schema-valid BENCH_*.json (+ traces) in $OUT_DIR"
