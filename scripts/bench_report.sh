#!/usr/bin/env sh
# Runs every buildable bench with machine-readable reporting and
# validates the collected BENCH_<name>.json files.
#
#   scripts/bench_report.sh [build-dir] [output-dir]
#
# build-dir defaults to ./build, output-dir to the repo root (the
# BENCH_*.json files live next to README.md so a checkout carries the
# latest measured numbers). Hand-rolled benches emit through
# bench/report.h (PPSC_BENCH_JSON env); google-benchmark binaries (e11,
# e13) emit through --benchmark_out=json. Every file is then validated
# with python3: parseable JSON plus the schema keys the downstream
# tooling relies on. Any bench failure, missing file, or schema
# violation exits nonzero -- CI runs this as a blocking step.
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build dir '$BUILD_DIR' not found (configure+build first)" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

# The two bench families emit different schemas; validate each
# accordingly. google-benchmark's schema is pinned upstream, so only
# its presence markers are checked.
validate() {
  # $1 = json path, $2 = "report" | "gbench"
  python3 - "$1" "$2" <<'EOF'
import json
import sys

path, kind = sys.argv[1], sys.argv[2]
with open(path) as f:
    data = json.load(f)
if kind == "report":
    required = ["bench", "git_rev", "wall_ms", "items_per_sec", "counters"]
else:
    required = ["context", "benchmarks"]
missing = [key for key in required if key not in data]
if missing:
    sys.exit(f"{path}: missing schema keys {missing}")
EOF
}

status=0
ran=0

run_report_bench() {
  name="$1"
  bin="$BUILD_DIR/$name"
  json="$OUT_DIR/BENCH_$name.json"
  if [ ! -x "$bin" ]; then
    echo "skip $name (not built)"
    return 0
  fi
  echo "run  $name"
  if ! PPSC_BENCH_JSON="$json" "$bin" > /dev/null; then
    echo "FAIL $name: bench exited nonzero" >&2
    status=1
    return 0
  fi
  if [ ! -s "$json" ]; then
    echo "FAIL $name: no report at $json" >&2
    status=1
    return 0
  fi
  if ! validate "$json" report; then
    status=1
    return 0
  fi
  ran=$((ran + 1))
}

run_gbench_bench() {
  name="$1"
  bin="$BUILD_DIR/$name"
  json="$OUT_DIR/BENCH_$name.json"
  if [ ! -x "$bin" ]; then
    echo "skip $name (google-benchmark not available at configure time)"
    return 0
  fi
  echo "run  $name"
  if ! "$bin" --benchmark_min_time=0.01 \
      --benchmark_out="$json" --benchmark_out_format=json > /dev/null; then
    echo "FAIL $name: bench exited nonzero" >&2
    status=1
    return 0
  fi
  if ! validate "$json" gbench; then
    status=1
    return 0
  fi
  ran=$((ran + 1))
}

# Keep in sync with PPSC_BENCH_BUILDABLE in CMakeLists.txt.
for name in \
    e1_landscape e2_example41 e3_example42 e4_rackoff e6_bottom e7_euler \
    e9_theorem43 e10_corollary44 e12_convergence e14_width_ablation \
    e15_scheduler_ablation e17_boolean_closure e18_exact_convergence \
    e19_census_profile; do
  run_report_bench "$name"
done

for name in e11_sim_throughput e13_coverability; do
  run_gbench_bench "$name"
done

if [ "$ran" -eq 0 ]; then
  echo "error: no bench produced a report" >&2
  exit 1
fi
if [ "$status" -ne 0 ]; then
  echo "bench report: FAILED" >&2
  exit "$status"
fi
echo "bench report: $ran schema-valid BENCH_*.json in $OUT_DIR"
