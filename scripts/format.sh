#!/usr/bin/env sh
# Formats the whole tree with the pinned clang-format major version, or
# verifies it with --check (what CI's blocking format job runs). The
# major version is pinned so formatter upgrades cannot silently change
# the rules; set CLANG_FORMAT to override the binary.
set -eu

cd "$(dirname "$0")/.."

PINNED_MAJOR=18

# Accept an explicit override, the versioned binary name, or an
# unversioned clang-format whose --version reports the pinned major --
# distros disagree on which name they ship.
if [ -n "${CLANG_FORMAT:-}" ]; then
  if ! command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
    echo "error: CLANG_FORMAT='$CLANG_FORMAT' not found on PATH" >&2
    exit 1
  fi
elif command -v "clang-format-$PINNED_MAJOR" > /dev/null 2>&1; then
  CLANG_FORMAT="clang-format-$PINNED_MAJOR"
elif command -v clang-format > /dev/null 2>&1; then
  major="$(clang-format --version 2> /dev/null |
    sed -n 's/.*version \([0-9]*\)\..*/\1/p' | head -n 1)"
  if [ "$major" = "$PINNED_MAJOR" ]; then
    CLANG_FORMAT="clang-format"
  else
    echo "error: clang-format on PATH is major version" \
      "${major:-unknown}, but this tree pins clang-format-$PINNED_MAJOR" >&2
    echo "hint: install clang-format-$PINNED_MAJOR (apt-get install" \
      "clang-format-$PINNED_MAJOR) or set CLANG_FORMAT to a" \
      "version-$PINNED_MAJOR binary" >&2
    exit 1
  fi
else
  echo "error: no clang-format found (tried clang-format-$PINNED_MAJOR," \
    "clang-format)" >&2
  echo "hint: install clang-format-$PINNED_MAJOR (apt-get install" \
    "clang-format-$PINNED_MAJOR) or set CLANG_FORMAT to a" \
    "version-$PINNED_MAJOR binary" >&2
  exit 1
fi

if [ "${1:-}" = "--check" ]; then
  MODE="--dry-run --Werror"
else
  MODE="-i"
fi

find include src tests bench \( -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 "$CLANG_FORMAT" $MODE
