#!/usr/bin/env sh
# Formats the whole tree with the pinned clang-format major version, or
# verifies it with --check (what CI's blocking format job runs). The
# major version is pinned so formatter upgrades cannot silently change
# the rules; set CLANG_FORMAT to override the binary.
set -eu

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format-18}"
if ! command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT to override)" >&2
  exit 1
fi

if [ "${1:-}" = "--check" ]; then
  MODE="--dry-run --Werror"
else
  MODE="-i"
fi

find include src tests bench \( -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 "$CLANG_FORMAT" $MODE
