#!/usr/bin/env python3
"""Cross-checks obs instrumentation against its documentation.

Blocking CI lint (docs/static-analysis.md). Three properties:

1. Naming convention: every counter/histogram/timer name published in
   src/ matches ``engine.metric`` (lowercase dotted segments,
   [a-z0-9_]); every span name is ``engine`` or ``engine.phase`` with
   a category naming the subsystem.
2. Docs completeness: every published metric name is listed in the
   "Current metrics by engine" bullets of docs/observability.md, and
   every span (name, category) appears in its span table. Timers are
   checked through their derived ``<name>.wall_ns`` / ``<name>.calls``
   counters.
3. No doc rot: every metric leaf and span the docs list exists in
   src/ -- deleting or renaming instrumentation without updating the
   tables fails the lint in the other direction.

The scan is textual (string-literal publish sites only), which is
exactly the repo convention: obs names must be literals because the
registries store the pointers. A name built at runtime would defeat
both this lint and the registry contract, so it is already a bug.

Usage: scripts/lint_metrics.py [--repo ROOT]   (exit 0 clean, 1 dirty)
"""

import argparse
import pathlib
import re
import sys

METRIC_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+){1,3}$")
SPAN_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+){0,2}$")
SPAN_CATEGORIES = {"petri", "sim", "verify", "solver"}

ADD_OR_RECORD = re.compile(
    r"\bregistry\.(add|record)\(\s*\"([^\"]+)\"")
SCOPED_TIMER = re.compile(r"\bScopedTimer\s+\w+\(\s*\"([^\"]+)\"\s*\)")
SCOPED_SPAN = re.compile(
    r"\bScopedSpan\s+\w+\(\s*\"([^\"]+)\"\s*,\s*\"([^\"]+)\"\s*\)")
# Conditional spans held in std::optional<ScopedSpan> arm via
# emplace; the variable-name convention (*_span / span) scopes the
# match to trace spans.
SPAN_EMPLACE = re.compile(
    r"\b\w*span\w*\.emplace\(\s*\"([^\"]+)\"\s*,\s*\"([^\"]+)\"\s*\)")

# docs/observability.md structure markers.
FAMILY_BULLET = re.compile(
    r"^- `([a-z0-9_.]+)\.\*`\s+—\s+(.*)$")
BACKTICK = re.compile(r"`([a-z0-9_.]+)`")
DOT_TOKEN = re.compile(r"`(\.[a-z0-9_.]+)`")


def fail(errors):
    for err in errors:
        print(f"lint_metrics: {err}", file=sys.stderr)
    print(f"lint_metrics: {len(errors)} finding(s)", file=sys.stderr)
    return 1


def scan_sources(src_root):
    """Returns (counters, histograms, timers, spans, errors).

    counters/histograms map name -> first "file:line"; timers and
    spans likewise (spans map (name, category))."""
    counters, histograms, timers, spans = {}, {}, {}, {}
    errors = []
    for path in sorted(src_root.rglob("*.cpp")):
        rel = path.relative_to(src_root.parent)
        if str(rel).startswith("src/obs/"):
            # The registry implementation itself (ScopedTimer's derived
            # .wall_ns/.calls keys are runtime-assembled there by
            # design and covered through the timer call sites).
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            where = f"{rel}:{lineno}"
            for kind, name in ADD_OR_RECORD.findall(line):
                target = counters if kind == "add" else histograms
                target.setdefault(name, where)
            for name in SCOPED_TIMER.findall(line):
                timers.setdefault(name, where)
            for name, category in SCOPED_SPAN.findall(line):
                spans.setdefault((name, category), where)
            for name, category in SPAN_EMPLACE.findall(line):
                spans.setdefault((name, category), where)
    return counters, histograms, timers, spans, errors


def parse_docs(doc_path):
    """Returns (metric_names, span_names, span_categories, errors).

    metric_names is the full set of documented counter/histogram
    names, expanded from the family bullets; span_names/categories
    from the span table."""
    text = doc_path.read_text()
    errors = []

    # --- metric families ---------------------------------------------------
    # Bullets run until the next bullet or blank line; join
    # continuation lines first.
    lines = text.splitlines()
    start = None
    for i, line in enumerate(lines):
        if line.strip() == "Current metrics by engine:":
            start = i + 1
            break
    if start is None:
        return set(), set(), {}, ["docs: 'Current metrics by engine:' "
                                  "section not found"]
    bullets = []
    for line in lines[start:]:
        if line.startswith("## "):
            break
        if line.startswith("- "):
            bullets.append(line)
        elif line.startswith("  ") and bullets:
            bullets[-1] += " " + line.strip()

    metric_names = set()
    for bullet in bullets:
        match = FAMILY_BULLET.match(bullet)
        if not match:
            errors.append(f"docs: unparseable metrics bullet: {bullet!r}")
            continue
        prefix, body = match.groups()
        # Full dotted names in backticks document themselves; dotted
        # suffixes (`.basis_final`) expand against the family prefix.
        for token in BACKTICK.findall(body):
            if token.startswith("."):
                continue
            metric_names.add(token)
        for token in DOT_TOKEN.findall(body):
            metric_names.add(prefix + token)
        # Remaining plain words are leaves of the family; strip
        # parentheticals and backticked regions before splitting.
        plain = re.sub(r"\([^)]*\)", " ", body)
        plain = re.sub(r"histograms?\s+(`[^`]*`(,\s*)?)+", " ", plain)
        plain = re.sub(r"`[^`]*`", " ", plain)
        for chunk in plain.split(","):
            for leaf in chunk.split("/"):
                leaf = leaf.strip().strip(";").strip()
                if re.fullmatch(r"[a-z0-9_]+", leaf):
                    metric_names.add(f"{prefix}.{leaf}")
    if not metric_names:
        errors.append("docs: no metric names parsed from the engine bullets")

    # --- span table --------------------------------------------------------
    span_names = set()
    span_categories = {}
    in_table = False
    for line in lines:
        if line.startswith("| Span | Category |"):
            in_table = True
            continue
        if in_table:
            if not line.startswith("|"):
                break
            cells = [c.strip() for c in line.strip("|").split("|")]
            if len(cells) < 2 or set(cells[0]) <= {"-", " "}:
                continue
            names_cell, category_cell = cells[0], cells[1]
            base = None
            for token in BACKTICK.findall(names_cell):
                if token.startswith("."):
                    if base is None:
                        errors.append(
                            f"docs: span suffix {token!r} with no base "
                            f"in row {line!r}")
                        continue
                    name = base + token
                else:
                    name = token
                    if base is None:
                        base = token
                span_names.add(name)
                span_categories[name] = category_cell
    if not span_names:
        errors.append("docs: no span table parsed")
    return metric_names, span_names, span_categories, errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=None,
                        help="repo root (default: the script's parent's parent)")
    args = parser.parse_args()
    root = pathlib.Path(args.repo) if args.repo else \
        pathlib.Path(__file__).resolve().parent.parent
    src_root = root / "src"
    doc_path = root / "docs" / "observability.md"
    if not src_root.is_dir() or not doc_path.is_file():
        return fail([f"missing {src_root} or {doc_path}"])

    counters, histograms, timers, spans, errors = scan_sources(src_root)
    doc_metrics, doc_spans, doc_span_categories, doc_errors = \
        parse_docs(doc_path)
    errors.extend(doc_errors)

    published = {}
    published.update(counters)
    published.update(histograms)
    for name, where in timers.items():
        published.setdefault(f"{name}.wall_ns", where)
        published.setdefault(f"{name}.calls", where)

    # 1. Naming convention.
    for name, where in sorted(published.items()):
        if not METRIC_NAME.match(name):
            errors.append(
                f"{where}: metric {name!r} violates the engine.metric "
                "naming convention (lowercase dotted [a-z0-9_] segments)")
    for (name, category), where in sorted(spans.items()):
        if not SPAN_NAME.match(name):
            errors.append(
                f"{where}: span {name!r} violates the engine[.phase] "
                "naming convention")
        if category not in SPAN_CATEGORIES:
            errors.append(
                f"{where}: span {name!r} category {category!r} is not a "
                f"subsystem ({', '.join(sorted(SPAN_CATEGORIES))})")

    # 2. Instrumentation documented.
    for name, where in sorted(published.items()):
        if name not in doc_metrics:
            errors.append(
                f"{where}: metric {name!r} is not listed in "
                "docs/observability.md (Current metrics by engine)")
    for (name, category), where in sorted(spans.items()):
        if name not in doc_spans:
            errors.append(
                f"{where}: span {name!r} is not in the span table of "
                "docs/observability.md")
        elif doc_span_categories.get(name) != category:
            errors.append(
                f"{where}: span {name!r} category {category!r} does not "
                f"match the documented {doc_span_categories.get(name)!r}")

    # 3. Docs not stale.
    for name in sorted(doc_metrics - set(published)):
        errors.append(
            f"docs/observability.md documents metric {name!r}, which no "
            "src/ call site publishes")
    for name in sorted(doc_spans - {n for (n, _) in spans}):
        errors.append(
            f"docs/observability.md documents span {name!r}, which no "
            "src/ ScopedSpan records")

    if errors:
        return fail(errors)
    print(f"lint_metrics: OK ({len(published)} metrics, {len(spans)} spans "
          "cross-checked against docs/observability.md)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
