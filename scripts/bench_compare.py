#!/usr/bin/env python3
"""Bench-trajectory regression gate.

Diffs a fresh set of BENCH_<name>.json files (produced by
scripts/bench_report.sh) against the committed baselines at the repo
root and renders a per-bench delta table. Two file kinds, matching the
two bench families:

  * report kind (bench/report.h): compares wall_ms and items_per_sec
    against relative thresholds, and requires *exact* equality for
    every registry counter except the `*.wall_ns` timing sums -- the
    engines are deterministic under fixed seeds, so configs/edges/
    iterations drifting is a correctness change, not noise.
  * gbench kind (--benchmark_out=json, e11/e13): matches benchmarks by
    name, compares real_time and items_per_second against the same
    thresholds, and requires exact equality for the custom counters
    (basis_peak, comparisons, ...) attached by the bench drivers.

Timing comparisons are deliberately loose (default: fail only when a
bench gets >50% slower) because CI machines are noisy; the exact
counter invariants are the sharp edge of the gate. File presence is
part of the contract too: a committed baseline with no fresh
counterpart (bench skipped, renamed, or crashed before writing) is
always a failing INVARIANT row, and under --strict a fresh report
without a committed baseline is as well -- coverage changes must not
hide behind a warning line. Exit status is 0
unless --strict is given, in which case any regression or invariant
violation exits 1 -- CI runs with --strict inside a non-blocking step
so regressions are reported on every run without gating merges on
shared-runner timing noise.

  scripts/bench_compare.py --fresh-dir bench-reports [--strict]
  scripts/bench_compare.py --fresh-dir bench-reports --update-baseline

--update-baseline copies the fresh files over the committed baselines
(use after an intentional perf or counter change, then commit the
diff).
"""

import argparse
import glob
import json
import os
import shutil
import sys

# Per-benchmark keys that google-benchmark itself emits; everything
# else in a benchmark object is a user counter and must be exact.
GBENCH_STANDARD_KEYS = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads",
    "iterations", "real_time", "cpu_time", "time_unit",
    "items_per_second", "aggregate_name", "aggregate_unit", "label",
    "error_occurred", "error_message",
}

# Registry counters that are wall-clock sums, not deterministic work
# counts (obs::ScopedTimer publishes <name>.wall_ns).
def is_timing_counter(key):
    return key.endswith(".wall_ns")


class Row:
    def __init__(self, bench, metric, base, fresh, status, note=""):
        self.bench = bench
        self.metric = metric
        self.base = base
        self.fresh = fresh
        self.status = status  # "ok" | "REGRESS" | "INVARIANT" | "warn"
        self.note = note

    def delta_pct(self):
        if isinstance(self.base, (int, float)) and isinstance(
                self.fresh, (int, float)) and self.base:
            return 100.0 * (self.fresh - self.base) / self.base
        return None


def fmt(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def kind_of(data):
    return "gbench" if "benchmarks" in data and "context" in data else "report"


def compare_timing(rows, bench, metric, base, fresh, slower_is, tol):
    """slower_is: +1 when larger fresh is worse, -1 when smaller is worse."""
    if base is None or fresh is None or base == 0:
        return
    worse = (fresh > base * (1.0 + tol)) if slower_is > 0 else (
        fresh < base * (1.0 - tol))
    rows.append(Row(bench, metric, base, fresh,
                    "REGRESS" if worse else "ok"))


def compare_exact(rows, bench, prefix, base_map, fresh_map):
    for key in sorted(set(base_map) | set(fresh_map)):
        if is_timing_counter(key):
            continue
        base, fresh = base_map.get(key), fresh_map.get(key)
        if base == fresh:
            continue
        note = ("missing in fresh" if fresh is None
                else "missing in baseline" if base is None else "drift")
        rows.append(Row(bench, f"{prefix}{key}", base, fresh, "INVARIANT",
                        note))


def compare_report(bench, base, fresh, args):
    rows = []
    compare_timing(rows, bench, "wall_ms", base.get("wall_ms"),
                   fresh.get("wall_ms"), +1, args.timing_tolerance)
    compare_timing(rows, bench, "items_per_sec", base.get("items_per_sec"),
                   fresh.get("items_per_sec"), -1, args.timing_tolerance)
    compare_exact(rows, bench, "counters.", base.get("counters", {}),
                  fresh.get("counters", {}))
    return rows


def compare_gbench(bench, base, fresh, args):
    rows = []
    base_by_name = {b["name"]: b for b in base.get("benchmarks", [])}
    fresh_by_name = {b["name"]: b for b in fresh.get("benchmarks", [])}
    for name in sorted(set(base_by_name) | set(fresh_by_name)):
        b, f = base_by_name.get(name), fresh_by_name.get(name)
        if b is None or f is None:
            rows.append(Row(bench, name, "present" if b else "absent",
                            "present" if f else "absent", "INVARIANT",
                            "benchmark set changed"))
            continue
        compare_timing(rows, bench, f"{name}:real_time", b.get("real_time"),
                       f.get("real_time"), +1, args.timing_tolerance)
        compare_timing(rows, bench, f"{name}:items_per_second",
                       b.get("items_per_second"), f.get("items_per_second"),
                       -1, args.timing_tolerance)
        compare_exact(
            rows, bench, f"{name}:",
            {k: v for k, v in b.items() if k not in GBENCH_STANDARD_KEYS},
            {k: v for k, v in f.items() if k not in GBENCH_STANDARD_KEYS})
    return rows


def render(rows, out):
    out.write("| bench | metric | baseline | fresh | delta | status |\n")
    out.write("|---|---|---:|---:|---:|---|\n")
    for row in rows:
        delta = row.delta_pct()
        delta_s = f"{delta:+.1f}%" if delta is not None else "-"
        status = row.status + (f" ({row.note})" if row.note else "")
        out.write(f"| {row.bench} | {row.metric} | {fmt(row.base)} "
                  f"| {fmt(row.fresh)} | {delta_s} | {status} |\n")


def main():
    parser = argparse.ArgumentParser(
        description="diff fresh BENCH_*.json against committed baselines")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory of committed BENCH_*.json (default .)")
    parser.add_argument("--fresh-dir", required=True,
                        help="directory of freshly generated BENCH_*.json")
    parser.add_argument("--timing-tolerance", type=float, default=0.5,
                        help="relative timing threshold (default 0.5 = 50%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any regression or invariant drift")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy fresh files over the baselines and exit")
    parser.add_argument("--report", default=None,
                        help="also write the markdown table to this path")
    args = parser.parse_args()

    fresh_paths = sorted(glob.glob(os.path.join(args.fresh_dir,
                                                "BENCH_*.json")))
    if not fresh_paths:
        sys.exit(f"error: no BENCH_*.json in {args.fresh_dir}")

    if args.update_baseline:
        for path in fresh_paths:
            dest = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"baseline <- {path}")
        return 0

    rows, warnings = [], []
    seen = set()
    for path in fresh_paths:
        name = os.path.basename(path)
        seen.add(name)
        base_path = os.path.join(args.baseline_dir, name)
        with open(path) as f:
            fresh = json.load(f)
        if not os.path.exists(base_path):
            # A fresh report without a baseline is benign while a bench
            # is being added, but under --strict the baseline set is the
            # contract: flag it as drift so it cannot land unnoticed.
            if args.strict:
                bench = name[len("BENCH_"):-len(".json")]
                rows.append(Row(bench, "presence", "absent", "present",
                                "INVARIANT", "no committed baseline"))
            else:
                warnings.append(f"{name}: no committed baseline (new bench?)")
            continue
        with open(base_path) as f:
            base = json.load(f)
        bench = name[len("BENCH_"):-len(".json")]
        if kind_of(base) != kind_of(fresh):
            rows.append(Row(bench, "schema", kind_of(base), kind_of(fresh),
                            "INVARIANT", "file kind changed"))
            continue
        compare = compare_gbench if kind_of(base) == "gbench" else \
            compare_report
        rows.extend(compare(bench, base, fresh, args))

    for base_path in sorted(glob.glob(os.path.join(args.baseline_dir,
                                                   "BENCH_*.json"))):
        name = os.path.basename(base_path)
        if name not in seen:
            # A committed baseline whose bench produced nothing means
            # coverage silently shrank (bench skipped, renamed, or its
            # binary failed before writing) -- that is drift, not noise,
            # so it is a failing row rather than a warning.
            bench = name[len("BENCH_"):-len(".json")]
            rows.append(Row(bench, "presence", "present", "absent",
                            "INVARIANT",
                            "baseline has no fresh counterpart"))

    bad = [r for r in rows if r.status in ("REGRESS", "INVARIANT")]
    # The full table is the artifact; stdout gets only the problems plus
    # a one-line verdict so CI logs stay scannable.
    if bad:
        render(bad, sys.stdout)
    for warning in warnings:
        print(f"warn: {warning}")
    benches = len(seen)
    print(f"bench_compare: {benches} benches, {len(rows)} comparisons, "
          f"{len(bad)} regressions/invariant-drifts, "
          f"{len(warnings)} warnings")
    if args.report:
        with open(args.report, "w") as out:
            out.write("# Bench comparison\n\n")
            render(rows, out)
            out.write(f"\n{benches} benches, {len(rows)} comparisons, "
                      f"{len(bad)} regressions/invariant-drifts.\n")
            for warning in warnings:
                out.write(f"- warn: {warning}\n")
    if bad and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
