// Span tracing: where did the time go *inside* one operation.
//
// The metrics layer (obs/metrics.h) answers "how much work happened";
// this layer answers "in what order, on which thread, and which phase
// dominated" by recording closed spans -- {name, category, start, end,
// thread, nesting depth, up to two numeric args} -- into per-thread
// ring buffers and exporting them as Chrome trace-event JSON that
// loads directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.
//
// Design constraints, mirroring the metrics layer:
//
//  * The hot path is a thread-owned ring write: no locks, no
//    allocation after the ring exists, no cross-thread traffic. Each
//    thread appends only to its own ring (single producer). Slots are
//    seqlock-protected (an atomic sequence word brackets the atomic
//    payload words), so a collector may run concurrently with writers:
//    it skips slots that are mid-write or already overwritten instead
//    of reading torn events, and the whole exchange is data-race-free
//    under the C++ memory model (TSan-clean by construction, pinned by
//    tests/test_concurrency.cpp). Exports are *complete* only when
//    writers are quiescent -- the bench drivers export after every
//    worker has joined.
//  * Rings are bounded (kRingCapacity events per thread); when a ring
//    wraps, the oldest events are overwritten and dropped() reports
//    how many were lost, so tracing a pathological run degrades to a
//    suffix window instead of unbounded memory.
//  * Tracing is opt-in at runtime: the registry starts enabled only
//    when PPSC_OBS_TRACE is "1"/"true"/"on" (or PPSC_TRACE_JSON names
//    an output path -- asking for a trace file implies tracing), and a
//    disabled ScopedSpan is one relaxed atomic load and a branch, with
//    the clock never read.
//  * Compiling with -DPPSC_OBS=OFF turns every ScopedSpan into an
//    empty inline body: zero code in the engines, same contract as the
//    metric publish paths.
//
// Span naming convention: `engine` for the whole operation and
// `engine.phase` for phases inside it (`explore.frontier`,
// `verify.unanimity`, `expected_time.solve`); the category is the
// subsystem (`petri`, `sim`, `verify`). Names and categories must be
// string literals (or otherwise outlive the registry): events store
// the pointers, never copies. docs/observability.md lists every span.

#ifndef PPSC_OBS_TRACE_H
#define PPSC_OBS_TRACE_H

#ifndef PPSC_OBS_ENABLED
#define PPSC_OBS_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ppsc {
namespace obs {

struct TraceArg {
  const char* key = "";
  std::uint64_t value = 0;
};

// One closed span. POD-sized so ring slots are assignment-cheap.
struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 2;

  const char* name = "";
  const char* category = "";
  std::uint64_t t_start_ns = 0;
  std::uint64_t t_end_ns = 0;
  // Small sequential id assigned per thread ring in registration
  // order; stamped by TraceRegistry::append.
  std::uint32_t thread_id = 0;
  // Nesting depth at emission (0 = top level on this thread).
  std::uint32_t depth = 0;
  std::uint32_t num_args = 0;
  TraceArg args[kMaxArgs];

  // Convenience for hand-built events in tests; keeps the first
  // kMaxArgs pairs.
  void add_arg(const char* key, std::uint64_t value);
};

class TraceRegistry {
 public:
  // Events kept per thread; a wrapped ring keeps the newest events.
  static constexpr std::size_t kRingCapacity = 1u << 16;

  // The process-wide trace sink. Never destroyed (intentionally
  // leaked), same rationale as MetricRegistry::global.
  static TraceRegistry& global();

  bool enabled() const {
#if PPSC_OBS_ENABLED
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  void set_enabled(bool on) {
#if PPSC_OBS_ENABLED
    enabled_.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
  }

  // Appends one closed event to the calling thread's ring, stamping
  // event.thread_id with the ring's id. No-op when disabled (or
  // compiled out). ScopedSpan is the normal producer; tests append
  // hand-built events directly.
  void append(TraceEvent event);

  // Every retained event, sorted by (thread_id, t_start_ns, depth) so
  // parents precede their children and per-thread tracks are
  // contiguous. Safe to call while writers append (slots mid-write or
  // overwritten during the scan are skipped, never torn); complete
  // iff writer threads are quiescent.
  std::vector<TraceEvent> collect() const;

  // Events lost to ring wrap-around since the last reset.
  std::uint64_t dropped() const;

  // Forgets all retained events (rings stay registered; live threads
  // keep their cached ring).
  void reset();

  // Chrome trace-event JSON: {"traceEvents":[{"name","cat","ph":"X",
  // "ts","dur","pid":1,"tid","args":{...}}, ...],
  // "displayTimeUnit":"ns"}. Timestamps are rebased to the earliest
  // retained start and written in microseconds (fractional), the
  // unit the format fixes. Deterministic given the same events.
  std::string to_chrome_json() const;

  // Writes to_chrome_json() (plus trailing newline) to `path`;
  // returns false and prints to stderr on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct Ring;

  TraceRegistry();

  Ring& local_ring();

#if PPSC_OBS_ENABLED
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards rings_ (the vector, not ring slots)
  std::vector<std::unique_ptr<Ring>> rings_;
#endif
};

// RAII span: records [construction, destruction) on the calling
// thread when the trace registry is enabled at construction. Nesting
// is tracked with a thread-local depth counter, so sibling and child
// spans reconstruct the call tree from (depth, interval containment).
#if PPSC_OBS_ENABLED

class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a numeric argument (shown under "args" in Perfetto).
  // Keeps the first TraceEvent::kMaxArgs; later calls are dropped.
  void arg(const char* key, std::uint64_t value) {
    if (armed_) event_.add_arg(key, value);
  }

 private:
  TraceEvent event_;
  bool armed_ = false;
};

#else  // !PPSC_OBS_ENABLED

class ScopedSpan {
 public:
  // User-provided (non-trivial) empty bodies so `ScopedSpan span(...)`
  // neither warns as unused nor emits code.
  ScopedSpan(const char*, const char*) {}
  ~ScopedSpan() {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(const char*, std::uint64_t) {}
};

#endif  // PPSC_OBS_ENABLED

// The PPSC_TRACE_JSON path, or nullptr when unset/empty.
const char* trace_json_env();

// Writes the global trace to $PPSC_TRACE_JSON if set; returns true
// iff a file was written. Benches call this once, after all worker
// threads have joined (bench/report.h does it from the Report
// destructor; the google-benchmark mains call it explicitly).
bool write_trace_if_requested();

}  // namespace obs
}  // namespace ppsc

#endif  // PPSC_OBS_TRACE_H
