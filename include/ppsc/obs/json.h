// Minimal hand-rolled JSON writer for the observability pipeline.
//
// The obs subsystem must serialize metric snapshots and bench reports
// without pulling a JSON dependency into the build, so this is a small
// streaming writer: explicit begin/end calls for objects and arrays,
// `key` + `value` inside objects, commas and escaping handled here.
// Output is deterministic -- the writer emits exactly what it is fed,
// in call order, with no whitespace -- so serialized snapshots can be
// compared byte-for-byte in tests and goldens.
//
// Escaping follows RFC 8259: '"', '\\' and control characters below
// 0x20 are escaped (the common ones by shorthand, the rest as \u00XX);
// all other bytes pass through untouched, so UTF-8 payloads survive.
// json_unescape inverts json_escape and exists for the round-trip
// tests; it rejects malformed escapes by returning std::nullopt.

#ifndef PPSC_OBS_JSON_H
#define PPSC_OBS_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ppsc {
namespace obs {

std::string json_escape(const std::string& raw);
std::optional<std::string> json_unescape(const std::string& escaped);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Object member key; must be followed by a value or container begin.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number);
  // Doubles print with %.17g (shortest round-trippable is overkill for
  // metrics; 17 significant digits always round-trips). NaN and
  // infinities are not representable in JSON and serialize as 0.
  JsonWriter& value(double number);
  JsonWriter& value(bool flag);

  // The document so far. Complete (all containers closed) iff done().
  const std::string& str() const { return out_; }
  bool done() const { return stack_.empty() && wrote_top_level_; }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void separator();

  std::string out_;
  std::vector<Scope> stack_;
  // True right after key(): the next token is this member's value and
  // must not be preceded by a comma.
  bool after_key_ = false;
  // True once the current container already holds an element.
  std::vector<bool> has_element_;
  bool wrote_top_level_ = false;
};

}  // namespace obs
}  // namespace ppsc

#endif  // PPSC_OBS_JSON_H
