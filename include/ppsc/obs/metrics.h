// Near-zero-overhead engine metrics: counters, log-bucketed histograms
// and RAII wall-clock timers behind one process-wide MetricRegistry.
//
// Design constraints, in the order they shaped the code:
//
//  * Hot loops never talk to the registry. Engines accumulate into
//    plain stack- or member-local PODs (petri::ExploreStats,
//    coverability::BackwardBasisStats, the scheduler counters) and
//    publish once per operation, so the per-step cost of metrics is a
//    few integer increments.
//  * Publishing is per-thread: each thread writes to its own sheet
//    (allocated on first use, owned by the registry) and sheets are
//    merged only at snapshot time. Counter merges are integer sums and
//    histogram merges are bucketwise sums -- both order-independent --
//    so a snapshot is bit-identical no matter how runs were spread
//    over threads. sim/parallel's 1-vs-N determinism is untouched
//    because metrics never feed back into simulation state or RNGs.
//  * Metrics are opt-in at runtime: the registry starts disabled
//    unless the PPSC_OBS environment variable is "1"/"true"/"on", and
//    bench/report.h enables it when PPSC_BENCH_JSON asks for a report.
//    When disabled, publish calls are a relaxed atomic load + branch.
//  * Compiling with -DPPSC_OBS=OFF (CMake) sets PPSC_OBS_ENABLED=0 and
//    the publish/record/timer paths compile to empty inline bodies.
//
// Metric naming convention: `engine.metric`, lowercase, e.g.
// `explore.configs`, `coverability.comparisons`, `sim.agent.draws`.
// Timers append `.wall_ns`. docs/observability.md has the full list.

#ifndef PPSC_OBS_METRICS_H
#define PPSC_OBS_METRICS_H

#ifndef PPSC_OBS_ENABLED
#define PPSC_OBS_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ppsc {
namespace obs {

// Power-of-two-bucketed value distribution. Bucket 0 holds the value
// 0; bucket b >= 1 holds values v with 2^(b-1) <= v < 2^b. 64 buckets
// cover the full uint64 range.
struct Histogram {
  static constexpr std::size_t kBuckets = 64;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t buckets[kBuckets] = {};

  static std::size_t bucket_of(std::uint64_t value);

  void record(std::uint64_t value);
  void merge(const Histogram& other);

  // Quantile estimate from the log buckets: linear interpolation
  // inside the bucket holding rank q*count, with the bucket's upper
  // edge clamped to the observed max (so estimates never exceed a
  // value that actually occurred). Exact for bucket-0 (zero) values;
  // elsewhere accurate to the bucket width. Returns 0 when empty.
  double quantile(double q) const;
};

// A merged, point-in-time view of every sheet in a registry. Keys are
// sorted (std::map), which is what makes to_json deterministic.
struct MetricSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, Histogram> histograms;

  // {"counters": {...}, "histograms": {name: {count, sum, max, p50,
  // p90, p99, buckets: [[lower_bound, count], ...]}}} with sorted
  // keys and no whitespace; byte-identical for equal snapshots. The
  // quantiles are the derived estimates of Histogram::quantile, so
  // percentiles need no offline recomputation from the buckets.
  std::string to_json() const;
};

class MetricRegistry {
 public:
  // The process-wide registry every engine publishes to. Never
  // destroyed (intentionally leaked) so publishes from late-exiting
  // threads cannot touch a dead object.
  static MetricRegistry& global();

  bool enabled() const {
#if PPSC_OBS_ENABLED
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  void set_enabled(bool on) {
#if PPSC_OBS_ENABLED
    enabled_.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
  }

  // Adds `delta` to the named counter on this thread's sheet. No-op
  // when disabled (or compiled out). `name` must outlive the call only
  // (it is copied into the sheet on first use).
  void add(const char* name, std::uint64_t delta);

  // Records one value into the named histogram on this thread's sheet.
  void record(const char* name, std::uint64_t value);

  // Merges every thread sheet into one snapshot. Safe to call while
  // other threads publish; their in-flight deltas land in a later
  // snapshot.
  MetricSnapshot snapshot() const;

  // Zeroes all sheets (the sheets themselves stay registered, so
  // thread-local pointers held by live threads remain valid).
  void reset();

 private:
  struct Sheet {
    std::mutex mu;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, Histogram> histograms;
  };

  MetricRegistry();

  Sheet& local_sheet();

#if PPSC_OBS_ENABLED
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards sheets_ (the vector, not contents)
  std::vector<std::unique_ptr<Sheet>> sheets_;
#endif
};

// RAII wall-clock timer: on destruction adds the elapsed nanoseconds
// to counter `<name>.wall_ns` and 1 to `<name>.calls`. When the
// registry is disabled at construction the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

// Writes the global registry snapshot (to_json + newline) to the path
// named by PPSC_OBS_DUMP; returns true iff a file was written, false
// when the variable is unset/empty or the write fails. The registry
// registers this via atexit when it is constructed with PPSC_OBS_DUMP
// set (and enables itself), so *any* binary that touches the registry
// -- a slow golden run, a ctest binary, a one-off tool -- dumps its
// full snapshot at process exit without code changes.
bool write_snapshot_if_requested();

}  // namespace obs
}  // namespace ppsc

#endif  // PPSC_OBS_METRICS_H
