// Core data model: population protocols as conservative Petri nets.
//
// A protocol is a Petri net whose places are the agent states, together
// with an output bit per state, a mapping from input dimensions to input
// states, and a fixed multiset of leader agents. Transitions are
// conservative (they preserve the number of agents), which is what makes
// every configuration space finite for a fixed input and lets the
// verifier in verify/stable.h enumerate it exhaustively.
//
// The width of a transition is the number of agents it consumes; the
// width of a protocol is the maximum over its transitions. The paper's
// Section 4 trades exactly these three resources against each other:
// states, width, and leaders.

#ifndef PPSC_CORE_PROTOCOL_H
#define PPSC_CORE_PROTOCOL_H

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ppsc {
namespace core {

using Count = long long;

// A configuration is a multiset of agent states, indexed by state id.
using Config = std::vector<Count>;

// One Petri-net transition. `pre` and `post` are dense count vectors over
// the protocol's states; the transition is enabled in a configuration c
// iff c[q] >= pre[q] for every state q, and firing it replaces the
// consumed agents with the produced ones.
struct Transition {
  std::string name;
  std::vector<Count> pre;
  std::vector<Count> post;

  Count width() const {
    Count total = 0;
    for (Count k : pre) total += k;
    return total;
  }
};

// The transition structure of a protocol, viewed as a Petri net over the
// agent states. Validation enforces conservation (population protocols
// never create or destroy agents) and rejects identity transitions so
// that "no enabled transition" coincides with "silent".
class PetriNet {
 public:
  explicit PetriNet(std::size_t num_places = 0) : num_places_(num_places) {}

  std::size_t num_places() const { return num_places_; }
  std::size_t num_transitions() const { return transitions_.size(); }
  const Transition& transition(std::size_t i) const { return transitions_[i]; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  // Throws std::invalid_argument on size mismatch, negative counts,
  // non-conservative or identity transitions.
  void add_transition(Transition t);

  bool enabled(const Transition& t, const Config& config) const;
  Config fire(const Transition& t, const Config& config) const;

 private:
  std::size_t num_places_;
  std::vector<Transition> transitions_;
};

class ProtocolBuilder;

// Named output bit for the declarative builder spelling
// (state("Y", Output::kOne)); equivalent to add_state's bool.
enum class Output { kZero = 0, kOne = 1 };

// An immutable population protocol. Build one with ProtocolBuilder.
class Protocol {
 public:
  std::size_t num_states() const { return state_names_.size(); }
  const std::string& state_name(std::size_t q) const { return state_names_[q]; }
  // Name -> id for every state (duplicate names keep the first id).
  const std::map<std::string, std::size_t>& states() const {
    return state_index_;
  }
  bool output(std::size_t q) const { return outputs_[q] != 0; }

  std::size_t input_arity() const { return input_states_.size(); }
  std::size_t input_state(std::size_t dim) const { return input_states_[dim]; }

  Count leaders(std::size_t q) const { return leaders_[q]; }
  // The leader multiset as a configuration over all states.
  const Config& leaders() const { return leaders_; }
  Count num_leaders() const;

  // Maximum number of agents consumed by a single transition.
  Count width() const;

  const PetriNet& net() const { return net_; }

  // Leaders plus `input[dim]` agents in each input state.
  Config initial_config(const std::vector<Count>& input) const;

  // Total number of agents in `config`.
  static Count population(const Config& config);

 private:
  friend class ProtocolBuilder;
  Protocol() = default;

  std::vector<std::string> state_names_;
  std::map<std::string, std::size_t> state_index_;
  std::vector<int> outputs_;
  std::vector<std::size_t> input_states_;
  std::vector<Count> leaders_;
  PetriNet net_;
};

// Incremental builder so constructions read declaratively.
class ProtocolBuilder {
 public:
  // Returns the id of the new state.
  std::size_t add_state(const std::string& name, bool output);

  // Appends an input dimension mapped to `state`; dimension ids are
  // assigned in call order.
  void add_input(std::size_t state);

  void add_leaders(std::size_t state, Count count);

  // General multiset transition; entries are (state, count) pairs.
  void add_rule(const std::string& name,
                const std::vector<std::pair<std::size_t, Count>>& pre,
                const std::vector<std::pair<std::size_t, Count>>& post);

  // Width-2 convenience: a + b -> c + d. Silently skipped when it would
  // be an identity (the pair {a,b} equals the pair {c,d}).
  void add_pair_rule(const std::string& name, std::size_t a, std::size_t b,
                     std::size_t c, std::size_t d);

  // Declarative by-name spellings for one-off protocols (bench E16's
  // racy-consensus example). `rule` parses exactly the width-2 shape
  // "a + b -> c + d" -- state names therefore must not contain '+' or
  // "->". Unknown names and malformed specs throw std::invalid_argument.
  std::size_t state(const std::string& name, Output output);
  void initial(const std::string& name);
  void rule(const std::string& spec);

  Protocol build();

 private:
  void check_state(std::size_t state, const std::string& rule) const;
  std::size_t state_id(const std::string& name, const std::string& where) const;

  Protocol protocol_;
  std::vector<Transition> pending_;
  bool built_ = false;
};

// A predicate over input vectors, carried alongside the protocol that is
// supposed to stably compute it.
struct Predicate {
  std::string name;
  std::size_t arity = 1;
  std::function<bool(const std::vector<Count>&)> fn;

  bool operator()(const std::vector<Count>& input) const { return fn(input); }
};

// A protocol together with the predicate it claims to compute and a
// human-readable family label, as used by the bench drivers.
struct ConstructedProtocol {
  std::string family;
  Protocol protocol;
  Predicate predicate;
};

}  // namespace core
}  // namespace ppsc

#endif  // PPSC_CORE_PROTOCOL_H
