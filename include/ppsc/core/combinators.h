// Boolean combinators over constructed protocols (Remark 1's Presburger
// closure direction): negation by output flip and conjunction /
// disjunction by the classical product construction. Products multiply
// state counts and cost |T1||P2|^2 + |T2||P1|^2 transitions, which is
// why succinctness results matter.
//
// The product combinators require leaderless width-2 operands with equal
// input arity; negation works on any protocol.

#ifndef PPSC_CORE_COMBINATORS_H
#define PPSC_CORE_COMBINATORS_H

#include "core/constructions.h"
#include "core/protocol.h"

namespace ppsc {
namespace core {

// Flips every state's output and negates the predicate.
ConstructedProtocol negate(const ConstructedProtocol& cp);

// Runs both protocols side by side in each agent; an interaction applies
// one operand's rule to that component and carries the other along.
ConstructedProtocol conjunction(const ConstructedProtocol& lhs,
                                const ConstructedProtocol& rhs);
ConstructedProtocol disjunction(const ConstructedProtocol& lhs,
                                const ConstructedProtocol& rhs);

// (lo <= x <= hi), built as unary_counting(lo) AND NOT unary_counting(hi+1).
ConstructedProtocol interval_counting(Count lo, Count hi);

}  // namespace core
}  // namespace ppsc

#endif  // PPSC_CORE_COMBINATORS_H
