// The paper's protocol constructions for the counting predicate (i >= n)
// and the classical comparison families the benches measure against.
//
// Section 4 of the paper argues that state count alone is meaningless:
// Example 4.1 decides (i >= n) with 2 states by paying interaction-width
// n, Example 4.2 with 6 states and width 2 by paying n leaders. The
// leaderless width-2 families (unary, binary, belief) pay states instead,
// and Corollary 4.4 says no bounded-width bounded-leader family can do
// asymptotically better than (log log n)^h states.

#ifndef PPSC_CORE_CONSTRUCTIONS_H
#define PPSC_CORE_CONSTRUCTIONS_H

#include <vector>

#include "core/protocol.h"

namespace ppsc {
namespace core {

// Example 4.1: 2 states {A, B}, n transitions, interaction-width n,
// leaderless. t_n fires n input agents simultaneously into B; t_k
// (k < n) lets one B recruit k more A's. Stably computes (i >= n).
ConstructedProtocol example_4_1(Count n);

// Example 4.2: 6 states, width 2, n leaders. Each hungry leader H eats
// one input X (H + X -> F + C0); a hungry leader vetoes fed leaders
// (H + F -> H + F0) and consumed inputs (H + C1 -> H + C0), while fed
// leaders campaign back (F + F0 -> F + F, F + C0 -> F + C1). All n
// leaders get fed iff i >= n. Stably computes (i >= n).
ConstructedProtocol example_4_2(Count n);

// Leaderless width-2 baseline with Theta(n) states: agents aggregate
// unary counts capped at n and carry a sticky witness bit that is set
// exactly when some interaction accumulates n. Stably computes (i >= n).
ConstructedProtocol unary_counting(Count n);

// unary_counting with inputs funnelled through a transient "fresh"
// state that a width-1 decay rule tears down. Same predicate (i >= n)
// and the same merge dynamics, but the width-1 rule defeats the
// pairwise rule-table compilation (sim::PairRuleTable::build returns
// null), forcing the count-based scheduler -- the e15 ablation uses it
// to exercise exactly that fallback.
ConstructedProtocol destructive_unary_counting(Count n);

// Leaderless width-2 family with log2(n) + 2 states for n a power of
// two: agents hold powers of two, equal values merge upward, and any
// pair summing to >= n converts to the spreading top state. Stably
// computes (i >= n). Throws unless n is a power of two and n >= 2.
ConstructedProtocol binary_counting(Count n);

// Leaderless width-2 family with exactly n states: the "belief level"
// ruler protocol. Two agents at level l < n-1 push one of them to l+1;
// level n-1 is reachable iff the population has at least n agents and
// then spreads. Stably computes (i >= n).
ConstructedProtocol threshold_belief(Count n);

// Modulo predicate (i mod m == r), m >= 2, 0 <= r < m: actives merge
// their residues mod m, the surviving active broadcasts the verdict to
// passive agents. m + 2 states, width 2, leaderless.
ConstructedProtocol modulo_counting(Count m, Count r);

// Weighted threshold over a |weights|-dimensional input: stably computes
// (sum_i weights[i] * x[i] >= threshold). Agents carry partial sums
// capped at `threshold`; a pair whose values reach the threshold turns
// into the sticky accepting state, which then spreads. threshold + 1
// states, width 2, leaderless. Throws on empty weights, a negative
// weight, or threshold < 1.
ConstructedProtocol weighted_threshold(const std::vector<Count>& weights,
                                       Count threshold);

// Exact majority over a two-dimensional input (a, b): the classical
// 4-state protocol with the tie rule a + b -> b + b, so ties decide 0.
// Stably computes (a > b).
ConstructedProtocol majority();

// The families E1 measures for a given threshold n: unary, belief,
// Example 4.1, Example 4.2, and (when n is a power of two) binary.
std::vector<ConstructedProtocol> counting_families(Count n);

// The predicate (i >= n) over a 1-dimensional input, shared by the
// counting constructions above.
Predicate counting_predicate(Count n);

}  // namespace core
}  // namespace ppsc

#endif  // PPSC_CORE_CONSTRUCTIONS_H
