// Bottom-configuration witnesses (Theorem 6.1).
//
// Theorem 6.1 says: from any marking rho there is a short execution to
// a configuration that is "bottom" -- the part of the net that stays
// bounded has settled into a closed, strongly connected component,
// while the remaining places can be pumped arbitrarily high. This
// module materializes that statement as a checkable witness tuple
// (sigma, w, Q, alpha, beta):
//
//   * sigma          rho --sigma--> alpha (replayable transition word);
//   * Q (q_mask)     the places that stay bounded at the bottom;
//   * w, beta        alpha --w--> beta with beta >= alpha, and
//                    beta[p] == alpha[p] exactly for p in Q: repeating
//                    w pumps every place outside Q without bound while
//                    fixing the Q-part;
//   * component      the T|Q-component of alpha|Q, i.e. the strongly
//                    connected component of alpha restricted to Q in
//                    the reachability graph of the sub-net net.restrict
//                    (q_mask). Bottomness requires it to be closed two
//                    ways: no T|Q step leaves it, and no Q-projected
//                    step of ANY transition leaves it (the projection
//                    is the dynamics visible on Q once the places
//                    outside Q hold omega many tokens -- this second
//                    closure is what makes the Section 7 control-state
//                    net of the component well-defined).
//
// check_bottom_witness re-validates all of the above by replay, so a
// witness is a machine-checked certificate, and the paper's length
// bound b (bounds::log2_theorem61_b) can be compared against |sigma|
// and |w| measured on concrete nets (bench E6).

#ifndef PPSC_PETRI_BOTTOM_H
#define PPSC_PETRI_BOTTOM_H

#include <cstddef>
#include <optional>
#include <vector>

#include "petri/petri_net.h"
#include "petri/reachability.h"

namespace ppsc {
namespace petri {

struct BottomWitness {
  std::vector<std::size_t> sigma;  // rho --sigma--> alpha
  std::vector<std::size_t> w;      // alpha --w--> beta
  std::vector<bool> q_mask;        // Q: the bounded places
  Config alpha;
  Config beta;
  std::size_t component_size = 0;  // |T|Q-component of alpha|Q|
};

// The strongly connected component of `from` in the reachability graph
// of `net`, explored up to `limits`. `closed` certifies bottomness of
// the component: exploration untruncated and no edge leaves it.
struct Component {
  std::vector<Config> members;  // discovery order, members.front() == from
  bool closed = false;
};

Component component_of(const PetriNet& net, const Config& from,
                       const ExploreLimits& limits = {});

// Searches for a Theorem 6.1 witness from rho. Finite reachability
// graphs always yield one (a bottom SCC with Q = all places and w
// empty); pumping nets go through Karp-Miller omega-sets and a bounded
// concrete search for the pumping word. std::nullopt when the limits
// are too tight for either phase.
std::optional<BottomWitness> find_bottom_witness(
    const PetriNet& net, const Config& rho, const ExploreLimits& limits = {});

// Replays sigma and w and re-derives the component; true iff every
// clause of the witness definition above holds.
bool check_bottom_witness(const PetriNet& net, const Config& rho,
                          const BottomWitness& witness,
                          const ExploreLimits& limits = {});

}  // namespace petri
}  // namespace ppsc

#endif  // PPSC_PETRI_BOTTOM_H
