// Bounded forward exploration: the reachability graph of a net from a
// set of root markings, cut off at a node budget.
//
// For conservative nets the graph is finite and `truncated` stays
// false, making the result an exact reachability graph (the object the
// Section 2 verifier and the Theorem 6.1 witness search both consume).
// For pumping nets exploration hits the budget and the caller must fall
// back to omega-based reasoning (karp_miller.h).

#ifndef PPSC_PETRI_REACHABILITY_H
#define PPSC_PETRI_REACHABILITY_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "petri/petri_net.h"

namespace ppsc {
namespace petri {

struct ExploreLimits {
  // Stop exploring (marking the result truncated) once this many
  // distinct configurations have been discovered.
  std::size_t max_nodes = 1u << 20;
};

struct ReachEdge {
  std::size_t target;
  std::size_t transition;
};

// Per-call exploration statistics, filled by every explore() run and
// carried on the result so consumers (e13/e19, the obs registry, the
// verifier) stop re-deriving them ad hoc. `probes` counts hash-table
// lookups (one per enabled transition firing plus one per root);
// `collisions` counts how many already-interned configurations shared
// a hash bucket with a newly inserted one, and is only collected while
// the obs registry is runtime-enabled (the bucket scan re-hashes the
// config, which the hot path should not pay for by default).
struct ExploreStats {
  std::size_t configs = 0;        // distinct configurations interned
  std::size_t edges = 0;          // reachability edges recorded
  std::size_t frontier_peak = 0;  // BFS frontier high-water mark
  std::uint64_t probes = 0;       // hash-map lookups
  std::uint64_t collisions = 0;   // bucket neighbours at insertion
  bool truncated = false;         // == ReachabilityGraph::truncated
};

struct ReachabilityGraph {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  std::vector<Config> nodes;  // nodes[0..roots-1] are the roots, BFS order
  std::vector<std::vector<ReachEdge>> edges;
  // BFS tree for path extraction; kNoParent on roots.
  std::vector<std::size_t> parent;
  std::vector<std::size_t> parent_transition;
  bool truncated = false;
  // Set when a `stop` predicate matched: index of the first matching
  // node in BFS discovery order (so word_to(*stopped) is a shortest
  // witness word). Exploration ceases at that point.
  std::optional<std::size_t> stopped;
  ExploreStats stats;

  // Index of `config` among nodes, or std::nullopt.
  std::optional<std::size_t> find(const Config& config) const;

  // Transition word from this node's root to the node, via the BFS tree.
  std::vector<std::size_t> word_to(std::size_t node) const;
};

// Breadth-first exploration from `roots`. When `stop` is provided it is
// evaluated on every discovered configuration (roots included);
// exploration halts at the first match, recorded in `stopped`. The
// coverability and bottom-witness engines use this early exit for their
// shortest-word searches.
ReachabilityGraph explore(const PetriNet& net, const std::vector<Config>& roots,
                          const ExploreLimits& limits = {},
                          const std::function<bool(const Config&)>& stop = {});

// Replays a transition word; std::nullopt as soon as a step is disabled.
std::optional<Config> fire_word(const PetriNet& net, Config from,
                                const std::vector<std::size_t>& word);

// Tarjan SCC decomposition of a reachability graph.
struct SccDecomposition {
  std::vector<std::size_t> component;  // node -> SCC id
  std::size_t count = 0;
  // bottom[s]: no edge leaves SCC s (only meaningful on untruncated
  // graphs -- a truncated graph may hide outgoing edges).
  std::vector<bool> bottom;
};

SccDecomposition scc_decompose(const ReachabilityGraph& graph);

}  // namespace petri
}  // namespace ppsc

#endif  // PPSC_PETRI_REACHABILITY_H
