// Euler circuits of directed multigraphs -- the merging step of the
// Section 7 total-cycle construction.
//
// Lemma 7.2 builds, for every edge of a strongly connected control
// graph, one simple cycle through that edge, then merges the resulting
// multiset of cycles into a single closed walk. The merge is exactly
// the Euler lemma: a directed multigraph whose every vertex is balanced
// (in-degree == out-degree, with multiplicities) and whose used edges
// are connected has an Euler circuit, i.e. a closed walk traversing
// every edge instance exactly once.

#ifndef PPSC_PETRI_EULER_H
#define PPSC_PETRI_EULER_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace ppsc {
namespace petri {

// Euler circuit of the multigraph with `edges[i] = (from, to)` taken
// `multiplicity[i]` times, starting and ending at `start`. Returns the
// walk as a sequence of edge indices (an index repeats once per
// multiplicity), or std::nullopt when the multigraph is unbalanced,
// its used edges are not connected to `start`, or `start` touches no
// edge while others do. All-zero multiplicities yield an empty walk.
std::optional<std::vector<std::size_t>> euler_circuit(
    std::size_t num_nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    const std::vector<std::uint64_t>& multiplicity, std::size_t start);

}  // namespace petri
}  // namespace ppsc

#endif  // PPSC_PETRI_EULER_H
