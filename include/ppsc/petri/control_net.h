// Control-state nets: a Petri net steered by a finite control graph
// (Section 7).
//
// A control-state net is a finite set of control states S, a Petri net
// over the remaining places, and directed edges (s, t, s') labelled by
// transitions of that net. It is how the Theorem 4.3 pipeline looks at
// a bottom component: the component's markings on the bounded places Q
// become the control states (the Petri-net places are the pumpable ones
// outside Q, which hold omega many tokens and never constrain firing),
// and each original transition contributes its off-Q effect as the edge
// label -- see from_component.
//
// total_cycle implements Lemma 7.2: in a strongly connected control
// graph, one simple cycle per edge (the edge followed by a shortest
// path back) merged by the Euler lemma yields a single closed walk
// through the anchor using every edge at least once, of length at most
// |E| * |S|.

#ifndef PPSC_PETRI_CONTROL_NET_H
#define PPSC_PETRI_CONTROL_NET_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "petri/petri_net.h"

namespace ppsc {
namespace petri {

class ControlStateNet {
 public:
  struct Edge {
    std::size_t from;
    std::size_t transition;  // index into net().transitions()
    std::size_t to;
  };

  ControlStateNet(PetriNet net, std::size_t num_controls)
      : net_(std::move(net)), num_controls_(num_controls) {}

  // The control-state net of a bottom component: `members` are the
  // component's markings over the places with q_mask[p] == true (as
  // produced by bottom.h's component_of), and every transition of `net`
  // whose Q-projected pre is covered by a member contributes an edge to
  // the member it maps that marking to (edges leaving the member set
  // are dropped; a closed component has none). The underlying Petri net
  // is `net` projected onto the complement of q_mask, transition
  // indices preserved.
  static ControlStateNet from_component(const PetriNet& net,
                                        const std::vector<Config>& members,
                                        const std::vector<bool>& q_mask);

  std::size_t num_controls() const { return num_controls_; }
  std::size_t num_edges() const { return edges_.size(); }
  const Edge& edge(std::size_t e) const { return edges_[e]; }
  const PetriNet& net() const { return net_; }

  void add_edge(std::size_t from, std::size_t transition, std::size_t to);

  // Every control state reaches every other along edges. Vacuously true
  // without edges only when there is at most one control state.
  bool strongly_connected() const;

  // Lemma 7.2: a closed walk from `anchor` using every edge at least
  // once, of length <= num_edges() * num_controls(). std::nullopt when
  // the control graph is not strongly connected or has no edges.
  std::optional<std::vector<std::size_t>> total_cycle(
      std::size_t anchor) const;

  // Occurrences of each edge in a walk.
  std::vector<std::uint64_t> parikh(const std::vector<std::size_t>& walk) const;

  // The walk is connected edge-to-edge and starts and ends at `anchor`
  // (an empty walk counts as the trivial cycle).
  bool is_cycle(const std::vector<std::size_t>& walk,
                std::size_t anchor) const;

  // Net-level effect of a multicycle with this Parikh image on the
  // underlying places (entries may be negative).
  std::vector<Count> displacement(
      const std::vector<std::uint64_t>& edge_counts) const;

 private:
  PetriNet net_;
  std::size_t num_controls_;
  std::vector<Edge> edges_;
};

}  // namespace petri
}  // namespace ppsc

#endif  // PPSC_PETRI_CONTROL_NET_H
