// General (possibly non-conservative) Petri nets for the decision
// engines of Sections 5-7.
//
// core::PetriNet models population protocols and therefore insists on
// conservation; the coverability / Karp-Miller / bottom machinery needs
// nets that pump (Theorem 6.1's whole point is that some places grow
// without bound), so this layer drops every structural restriction:
// transitions may create or destroy tokens and may even be identities.
// An implicit adapter from core::PetriNet lets a protocol's net() flow
// into the engines directly.
//
// Two notions of sub-net are used by the paper and kept distinct here:
//
//  * restrict(keep) -- the sub-net T|Q: only transitions whose pre AND
//    post are entirely supported on the kept places survive (Section 8
//    restricts Example 4.2 to P \ I this way).
//  * project(keep)  -- every transition survives with its pre/post
//    truncated to the kept places. This is the dynamics seen on Q when
//    all other places hold omega many tokens, which is how bottom
//    components and control-state nets look at a marking (Section 6-7).

#ifndef PPSC_PETRI_PETRI_NET_H
#define PPSC_PETRI_PETRI_NET_H

#include <cstddef>
#include <optional>
#include <vector>

#include "core/protocol.h"
#include "petri/config.h"

namespace ppsc {
namespace petri {

struct Transition {
  Config pre;
  Config post;

  // Number of tokens consumed (the interaction width of Section 4).
  Count width() const { return pre.total(); }
};

class PetriNet {
 public:
  explicit PetriNet(std::size_t num_states = 0) : num_states_(num_states) {}

  // Adapter from the protocol-level net: same places, same transitions.
  PetriNet(const core::PetriNet& net);

  std::size_t num_states() const { return num_states_; }
  std::size_t num_transitions() const { return transitions_.size(); }
  const Transition& transition(std::size_t i) const { return transitions_[i]; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  // Appends a transition; only dimensions are checked (negative counts
  // are rejected, identities and non-conservative effects are allowed).
  void add(Config pre, Config post);

  // Largest entry over all pre and post vectors (||T||_inf).
  Count norm_inf() const;

  // Largest transition width.
  Count max_width() const;

  bool enabled(std::size_t t, const Config& config) const;
  Config fire(std::size_t t, const Config& config) const;

  // Sub-net T|Q: keeps the places with keep[p] == true (re-indexed) and
  // only the transitions entirely supported on them.
  PetriNet restrict(const std::vector<bool>& keep) const;

  // Projection: keeps every transition, truncating pre/post to the kept
  // places. Transition indices are preserved.
  PetriNet project(const std::vector<bool>& keep) const;

 private:
  std::size_t num_states_;
  std::vector<Transition> transitions_;
};

// One step of the Q-projected dynamics (the Section 6/7 view with
// omega tokens outside Q): fires `t` restricted to the places with
// keep[p] == true on `marking`, a configuration over those places.
// std::nullopt when the projected pre is not covered. Shared by the
// bottom-witness closure check and ControlStateNet::from_component.
std::optional<Config> projected_step(const Transition& t,
                                     const std::vector<bool>& keep,
                                     const Config& marking);

}  // namespace petri
}  // namespace ppsc

#endif  // PPSC_PETRI_PETRI_NET_H
