// Karp-Miller coverability graph with omega-acceleration.
//
// Omega-marking convention (shared with bottom.h): a marking entry
// equal to kOmega means "arbitrarily many tokens can be put on this
// place". kOmega absorbs transition effects (omega +- k = omega) and
// dominates every finite count in the covering order. Acceleration is
// the classical rule: when a new marking strictly dominates one of its
// ancestors, every strictly increased place is promoted to omega --
// repeating the pumping word between the two nodes grows those places
// without bound.
//
// The construction here is the graph variant: markings equal to an
// already-expanded one are shared instead of re-expanded, which keeps
// the covering semantics (a marking >= target exists in the graph iff
// target is coverable) while staying much smaller than the tree.

#ifndef PPSC_PETRI_KARP_MILLER_H
#define PPSC_PETRI_KARP_MILLER_H

#include <cstddef>
#include <limits>
#include <vector>

#include "petri/petri_net.h"

namespace ppsc {
namespace petri {

// Omega sentinel inside Config entries.
constexpr Count kOmega = std::numeric_limits<Count>::max();

struct KarpMillerNode {
  Config marking;           // entries may be kOmega
  std::size_t parent;       // index into nodes, kNoParent on the root
  std::size_t transition;   // transition fired from the parent
};

struct KarpMillerResult {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  std::vector<KarpMillerNode> nodes;
  bool truncated = false;

  // Some marking in the graph dominates `target` (omega covers all).
  bool covers(const Config& target) const;

  // keep[p] == true iff place p is finite in marking `node`; the false
  // places are exactly the omega (pumpable) ones.
  std::vector<bool> finite_places(std::size_t node) const;
};

// Builds the Karp-Miller graph from `root`, giving up (truncated) after
// `max_nodes` markings. On untruncated results `covers` decides
// coverability from `root` exactly.
KarpMillerResult karp_miller(const PetriNet& net, const Config& root,
                             std::size_t max_nodes);

}  // namespace petri
}  // namespace ppsc

#endif  // PPSC_PETRI_KARP_MILLER_H
