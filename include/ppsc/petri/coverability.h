// Coverability: can some reachable marking dominate the target?
//
// Two engines, matching the two sides of Lemma 5.3:
//
//  * backward_basis / coverable -- the classical backward algorithm on
//    upward-closed sets. An upward-closed set U is represented by its
//    (finite, by Dickson's lemma) minimal basis B: U = {x : exists b in
//    B, x >= b}. Starting from the upward closure of the target, the
//    predecessor basis under transition t maps b to
//    max(pre_t, b - (post_t - pre_t)) componentwise; elements dominated
//    by another basis element are pruned, which is what guarantees
//    termination. The target is coverable from `source` iff the fixpoint
//    basis contains an element <= source.
//
//  * shortest_covering_word -- exact shortest covering sequences by
//    forward breadth-first search, the quantity Lemma 5.3's Rackoff
//    bound (bounds::log2_rackoff_bound) caps. The search is cut off at
//    `max_nodes` distinct markings; a missing word with `truncated` set
//    means "not found within the budget", not "uncoverable".

#ifndef PPSC_PETRI_COVERABILITY_H
#define PPSC_PETRI_COVERABILITY_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "petri/petri_net.h"
#include "petri/reachability.h"

namespace ppsc {
namespace petri {

// Per-call statistics of the backward fixpoint, the quantities behind
// its scaling behaviour: the dominance scan over the basis is a linear
// pass per candidate predecessor, so `comparisons` (one per covers()
// call) grows roughly with `predecessors` * `basis_peak` -- the e13
// wall past ~30 places, made visible.
struct BackwardBasisStats {
  std::size_t basis_final = 0;        // minimal basis size at fixpoint
  std::size_t basis_peak = 0;         // largest intermediate basis
  std::uint64_t basis_size_sum = 0;   // basis size summed per iteration
  std::uint64_t iterations = 0;       // work-queue items processed
  std::uint64_t predecessors = 0;     // candidate predecessors generated
  std::uint64_t pruned_dominated = 0; // candidates dropped as dominated
  std::uint64_t evictions = 0;        // basis elements a candidate evicted
  std::uint64_t comparisons = 0;      // covers() calls in dominance scans
};

// Minimal basis of the set of markings from which `target` is coverable.
// `max_basis` is a safety valve (std::runtime_error beyond it); the
// algorithm itself always terminates. `stats`, when non-null, receives
// the per-call fixpoint statistics.
std::vector<Config> backward_basis(const PetriNet& net, const Config& target,
                                   std::size_t max_basis = 1u << 22,
                                   BackwardBasisStats* stats = nullptr);

// True iff some marking >= target is reachable from `source`.
bool coverable(const PetriNet& net, const Config& source, const Config& target,
               std::size_t max_basis = 1u << 22);

struct CoveringWordResult {
  // Shortest transition word sigma with source --sigma--> m >= target.
  std::optional<std::vector<std::size_t>> word;
  std::size_t explored = 0;
  bool truncated = false;
  // Statistics of the underlying forward exploration (explored and
  // truncated above are redundant views kept for compatibility).
  ExploreStats stats;
};

CoveringWordResult shortest_covering_word(const PetriNet& net,
                                          const Config& source,
                                          const Config& target,
                                          std::size_t max_nodes);

}  // namespace petri
}  // namespace ppsc

#endif  // PPSC_PETRI_COVERABILITY_H
