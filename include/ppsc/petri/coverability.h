// Coverability: can some reachable marking dominate the target?
//
// Two engines, matching the two sides of Lemma 5.3:
//
//  * backward_basis / coverable -- the classical backward algorithm on
//    upward-closed sets. An upward-closed set U is represented by its
//    (finite, by Dickson's lemma) minimal basis B: U = {x : exists b in
//    B, x >= b}. Starting from the upward closure of the target, the
//    predecessor basis under transition t maps b to
//    max(pre_t, b - (post_t - pre_t)) componentwise; elements dominated
//    by another basis element are pruned, which is what guarantees
//    termination. The target is coverable from `source` iff the fixpoint
//    basis contains an element <= source.
//
//  * shortest_covering_word -- exact shortest covering sequences by
//    forward breadth-first search, the quantity Lemma 5.3's Rackoff
//    bound (bounds::log2_rackoff_bound) caps. The search is cut off at
//    `max_nodes` distinct markings; a missing word with `truncated` set
//    means "not found within the budget", not "uncoverable".

#ifndef PPSC_PETRI_COVERABILITY_H
#define PPSC_PETRI_COVERABILITY_H

#include <cstddef>
#include <optional>
#include <vector>

#include "petri/petri_net.h"

namespace ppsc {
namespace petri {

// Minimal basis of the set of markings from which `target` is coverable.
// `max_basis` is a safety valve (std::runtime_error beyond it); the
// algorithm itself always terminates.
std::vector<Config> backward_basis(const PetriNet& net, const Config& target,
                                   std::size_t max_basis = 1u << 22);

// True iff some marking >= target is reachable from `source`.
bool coverable(const PetriNet& net, const Config& source, const Config& target,
               std::size_t max_basis = 1u << 22);

struct CoveringWordResult {
  // Shortest transition word sigma with source --sigma--> m >= target.
  std::optional<std::vector<std::size_t>> word;
  std::size_t explored = 0;
  bool truncated = false;
};

CoveringWordResult shortest_covering_word(const PetriNet& net,
                                          const Config& source,
                                          const Config& target,
                                          std::size_t max_nodes);

}  // namespace petri
}  // namespace ppsc

#endif  // PPSC_PETRI_COVERABILITY_H
