// Dense Petri-net configurations (markings) for the petri/ engines.
//
// Unlike core::Config (a bare std::vector tied to a conservative
// protocol), petri::Config is a small value class usable with arbitrary
// -- in particular non-conservative -- nets: the coverability,
// Karp-Miller and bottom-witness engines all create and compare
// markings structurally, independent of any protocol.
//
// Conventions shared across include/ppsc/petri/ (see also
// coverability.h, karp_miller.h and bottom.h):
//
//  * A configuration assigns a count >= 0 to every place; places are
//    dense indices 0..d-1 and configurations of different dimension
//    never compare equal.
//  * `covers` is the componentwise order x >= y that all upward-closed
//    reasoning (coverability bases, omega-markings) is built on.
//  * `restrict(keep)` projects onto the places with keep[p] == true,
//    re-indexing them in increasing order of p. It is the marking-level
//    counterpart of PetriNet::restrict / PetriNet::project.

#ifndef PPSC_PETRI_CONFIG_H
#define PPSC_PETRI_CONFIG_H

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace ppsc {
namespace petri {

using Count = long long;

class Config {
 public:
  Config() = default;
  explicit Config(std::size_t dimension) : counts_(dimension, 0) {}
  Config(std::initializer_list<Count> counts) : counts_(counts) {}
  // Implicit adapter from core::Config (= std::vector<Count>) so
  // protocol-level markings flow into the petri engines unchanged.
  Config(std::vector<Count> counts) : counts_(std::move(counts)) {}

  // The configuration with `count` tokens on `place` and 0 elsewhere.
  static Config unit(std::size_t dimension, std::size_t place,
                     Count count = 1);

  std::size_t size() const { return counts_.size(); }
  Count operator[](std::size_t place) const { return counts_[place]; }
  Count& operator[](std::size_t place) { return counts_[place]; }
  const std::vector<Count>& raw() const { return counts_; }

  // Largest single-place count (the norm written ||.||_inf in Section 5).
  Count norm_inf() const;

  // Total number of tokens.
  Count total() const;

  // Componentwise x >= other (same dimension required).
  bool covers(const Config& other) const;

  // Projection onto the places with keep[p] == true, re-indexed in
  // increasing place order.
  Config restrict(const std::vector<bool>& keep) const;

  friend bool operator==(const Config& a, const Config& b) {
    return a.counts_ == b.counts_;
  }
  friend bool operator!=(const Config& a, const Config& b) {
    return !(a == b);
  }
  // Lexicographic, so configurations can key ordered containers.
  friend bool operator<(const Config& a, const Config& b) {
    return a.counts_ < b.counts_;
  }

 private:
  std::vector<Count> counts_;
};

// FNV-1a folding of splitmix64-mixed counts, for unordered containers
// of configurations. Raw counts are tiny integers (markings are mostly
// 0s and 1s), and folding them directly leaves most of the hash state
// untouched -- permuted small markings then collide trivially. The
// splitmix64 finalizer spreads each count over all 64 bits before the
// fold, so both the value and its position genuinely mix.
struct ConfigHash {
  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64's gamma increment keeps zero counts from mixing to 0
    // (the finalizer alone is a bijection fixing 0).
    x += 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  std::size_t operator()(const Config& config) const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (Count k : config.raw()) {
      h ^= mix(static_cast<std::uint64_t>(k));
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace petri
}  // namespace ppsc

#endif  // PPSC_PETRI_CONFIG_H
