// Compiling wide transitions to width 2 (the Section 4 construction).
//
// A transition consuming w > 2 tokens is replaced by a gather chain:
// collector places a_2 .. a_{w-1} where a_i represents the first i
// tokens of the pre-multiset already collected, width-2 steps
//
//   p_1 + p_2 -> a_2,   a_i + p_{i+1} -> a_{i+1},   a_{w-1} + p_w -> post
//
// (token order fixed by increasing place index). The compiled net is
// deliberately non-conservative at the Petri level: one a_i token
// stands for i agents. Width <= 2 transitions are copied unchanged.
//
// The compilation is projection-equivalent: `embed` lifts an original
// marking (zero on collectors), `cleanup` rolls partially gathered
// collectors back onto their source places, and `project` drops the
// collector places -- the image under project(cleanup(.)) of the
// compiled reachability set equals the original reachability set
// (bench E14 re-checks this on every instance). The price is what
// Section 4's trade-off predicts: width n protocols pay Theta(n^2)
// collector places to get width 2.

#ifndef PPSC_PETRI_WIDTH_REDUCTION_H
#define PPSC_PETRI_WIDTH_REDUCTION_H

#include <cstddef>
#include <vector>

#include "petri/petri_net.h"

namespace ppsc {
namespace petri {

struct WidthReduction {
  PetriNet compiled;                // original places first, then collectors
  std::size_t original_places = 0;
  // For each collector place (indexed from original_places), the
  // multiset of original tokens it stands for.
  std::vector<Config> collector_contents;

  // Original marking -> compiled marking (collectors empty).
  Config embed(const Config& original) const;

  // Compiled marking -> original places only (collector counts dropped).
  Config project(const Config& compiled) const;

  // Rolls every collector token back onto the original places it
  // gathered, zeroing the collectors (dimension stays compiled).
  Config cleanup(const Config& compiled) const;
};

// Compiles every transition of `net` to width <= 2 as above.
WidthReduction widen_to_width2(const PetriNet& net);

}  // namespace petri
}  // namespace ppsc

#endif  // PPSC_PETRI_WIDTH_REDUCTION_H
