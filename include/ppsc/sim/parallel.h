// Deterministic multi-threaded convergence sweeps.
//
// A sweep of R runs derives per-run seeds as options.seed + r, exactly
// like the serial measure_convergence always has, and stores each
// run's outcome at its run index before aggregating in index order --
// so the statistics are bit-identical for 1 thread and N threads, and
// independent of how the OS interleaves the workers. Worker threads
// share one immutable PairRuleTable: planned_scheduler picks one of
// the four scheduler paths (agent / sharded / census / count) per
// sweep from RunOptions::scheduler, the population and the state
// count, degrading to the count scheduler whenever the protocol does
// not compile to a pair table.

#ifndef PPSC_SIM_PARALLEL_H
#define PPSC_SIM_PARALLEL_H

#include <cstddef>
#include <vector>

#include "core/protocol.h"
#include "sim/simulator.h"

namespace ppsc {
namespace sim {

// Runs `runs` independent simulations across `num_threads` worker
// threads (0 = one per hardware thread, capped at the run count) and
// aggregates their convergence statistics in run-index order.
ConvergenceStats measure_convergence_parallel(
    const core::ConstructedProtocol& cp, const std::vector<core::Count>& input,
    std::size_t runs, const RunOptions& options = {},
    unsigned num_threads = 0);

// The scheduler the dispatch heuristic selects for one run: resolves
// options.scheduler (kAuto picks census for small-state/large-
// population runs, sharded for very large populations, agent
// otherwise; every table-based choice degrades to kCount when
// `has_table` is false). Exposed so the heuristic's thresholds are
// unit-testable; measure_convergence routes every run through exactly
// this function.
SchedulerChoice planned_scheduler(const RunOptions& options, bool has_table,
                                  std::size_t num_states,
                                  core::Count population);

}  // namespace sim
}  // namespace ppsc

#endif  // PPSC_SIM_PARALLEL_H
