// Deterministic multi-threaded convergence sweeps.
//
// A sweep of R runs derives per-run seeds as options.seed + r, exactly
// like the serial measure_convergence always has, and stores each
// run's outcome at its run index before aggregating in index order --
// so the statistics are bit-identical for 1 thread and N threads, and
// independent of how the OS interleaves the workers. Worker threads
// share one immutable PairRuleTable: each run takes the agent-array
// fast path when the protocol compiles to one, and the count scheduler
// otherwise.

#ifndef PPSC_SIM_PARALLEL_H
#define PPSC_SIM_PARALLEL_H

#include <cstddef>
#include <vector>

#include "core/protocol.h"
#include "sim/simulator.h"

namespace ppsc {
namespace sim {

// Runs `runs` independent simulations across `num_threads` worker
// threads (0 = one per hardware thread, capped at the run count) and
// aggregates their convergence statistics in run-index order.
ConvergenceStats measure_convergence_parallel(
    const core::ConstructedProtocol& cp, const std::vector<core::Count>& input,
    std::size_t runs, const RunOptions& options = {},
    unsigned num_threads = 0);

}  // namespace sim
}  // namespace ppsc

#endif  // PPSC_SIM_PARALLEL_H
