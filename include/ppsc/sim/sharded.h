// Sharded uniform-random-pair scheduler: one population, split into
// per-shard contiguous agent slices so the two agent-slot accesses of
// a draw hit a slice that fits the cache hierarchy, with draws issued
// in prefetch batches and the slices re-mixed by periodic cross-shard
// exchanges. This is the large-population path (10^7 .. 10^9 agents):
// AgentSimulator's two uniform array reads per draw fall out of cache
// past ~10^6 agents and its throughput collapses by ~4x; the sharded
// scheduler recovers it with batching + locality and additionally
// runs the shards on N worker threads when cores are available.
//
// ---------------------------------------------------------------------
// Why sharded draws preserve the uniform-pair law (mixing argument)
// ---------------------------------------------------------------------
//
// The global scheduler draws an ordered pair of distinct agents
// uniformly from the n(n-1) possibilities. The sharded scheduler
// instead proceeds in epochs: each of the S shards draws K ordered
// pairs uniformly from its own slice of m ~ n/S agents, and between
// epochs X = (S*K) >> exchange_shift uniformly random cross-shard
// transpositions swap agents between slices. Three observations relate
// the two chains:
//
// 1. Exchangeability lemma. Protocol dynamics depend on the census
//    only: states carry no identity, so the chain's law is a function
//    of per-state counts, never of which array slot holds which state.
//    If, conditional on the global census, the assignment of states to
//    array positions is exchangeable (uniform over arrangements), then
//    the two slots picked by a uniform intra-slice draw are a
//    uniformly random unordered pair of *agents* of the global
//    population -- exactly the law of a global draw. Under
//    exchangeability, restricting the draw to a slice costs nothing.
//
// 2. Per-agent interaction intensity. Every shard performs the same K
//    draws per epoch, and slice sizes differ by at most one, so each
//    agent participates in an epoch's draws with equal probability
//    2K/m +- O(1/m^2) -- the global scheduler's 2/n per draw, scaled
//    by the K draws. The allocation of draws to shards therefore
//    introduces no per-agent bias on top of (1).
//
// 3. What breaks exchangeability, and the restoring force. Initial
//    slices are striped proportionally (each shard receives a
//    floor/ceil share of every state's count), the concentrated value
//    of a uniform arrangement. Within an epoch, a shard's *own*
//    productive draws only write states the shard itself holds, but
//    they correlate slot contents with the slice: after K draws a
//    slice census can drift from its proportional share by O(sqrt(K))
//    states, giving per-draw pair-type bias O(K/m) relative to the
//    global law. The cross-shard exchange re-randomizes slot
//    placement: X uniform transpositions per epoch refresh a constant
//    fraction (X / (S*K) = 2^-exchange_shift) of the slots a shard's
//    draws touch, which caps census drift at the same O(sqrt(K))
//    stationary envelope instead of letting it accumulate across
//    epochs -- random transpositions are the classical mixing dynamics
//    for exchangeability, and any constant rate defeats linear drift.
//    In the regime this scheduler targets (m >= 10^6, K = 8192) the
//    per-draw bias bound K/m is <= 0.8%, and vanishes as populations
//    grow toward the paper's double-exponential thresholds.
//
// The contract is therefore: *exact* equivalence at S = 1 (no
// exchange, one slice, the very RNG-draw sequence of AgentSimulator --
// bit-identical chains, pinned by tests/test_scheduler.cpp), and
// *distributional* equivalence at S > 1 with an O(K/m) per-draw bias
// that the equivalence test bounds empirically against AgentSimulator.
// Determinism: the chain is a function of the seed and the shard
// count alone. Shard s draws from util::Xoshiro256::stream(seed, s)
// and the exchange stream is the long_jump'd seed generator, so runs
// with equal (seed, shards) are bit-identical regardless of worker
// count or OS scheduling -- workers only decide *where* a shard's
// batch executes, never what it computes.
//
// Silence is detected at epoch barriers from the exact summed census
// (the same enabled-ordered-pairs count AgentSimulator maintains
// incrementally); between barriers the shards run free of any shared
// state. Per-shard counters (draws, productive, prefetch batches) are
// plain local increments; cross-shard swap and steal counts are
// published as sim.shard.* metrics by publish_metrics().

#ifndef PPSC_SIM_SHARDED_H
#define PPSC_SIM_SHARDED_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/protocol.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace ppsc {
namespace sim {

struct ShardedOptions {
  // Number of agent slices; 0 = the default of 8 (chosen so 10^7-agent
  // slices drop under typical L2/L3 shares; see docs/sim-sharding.md).
  // 1 disables exchange and reproduces AgentSimulator bit-exactly.
  std::size_t shards = 0;
  // Worker threads driving the shards; 0 = min(shards, hardware
  // threads). 1 runs everything inline on the calling thread. The
  // result never depends on this value.
  unsigned workers = 0;
  // Intra-shard draws per shard per epoch (K in the mixing argument).
  std::uint64_t batch = 8192;
  // Cross-shard transpositions per epoch = (shards * batch) >> shift;
  // the default refreshes one slot per eight draw-touched slots --
  // measured as the knee where weaker exchange stops buying throughput
  // (each swap costs four RNG draws plus two far-cache accesses).
  unsigned exchange_shift = 3;
};

class ShardedSimulator {
 public:
  // The table must outlive the simulator. `initial` is a configuration
  // over the protocol's states.
  ShardedSimulator(const PairRuleTable& table, const core::Config& initial,
                   std::uint64_t seed, ShardedOptions options = {});
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  // Runs one epoch (K draws per shard, then the cross-shard exchange
  // and the census/silence refresh). Returns true iff the
  // configuration is not silent afterwards; a silent configuration
  // draws nothing. Populations below 2 per shard draw nothing in that
  // shard (and, unlike AgentSimulator::step, record no interactions).
  bool epoch();

  // Epochs until silent or steps() >= max_steps; returns steps().
  // Epoch granularity can overshoot max_steps by < shards * batch
  // productive steps; callers comparing against a step budget should
  // clamp (sim/parallel.cpp does).
  std::uint64_t run(std::uint64_t max_steps);

  bool silent() const { return enabled_pairs_ == 0; }
  // Productive interactions so far (summed at the last barrier).
  std::uint64_t steps() const { return steps_; }
  // Raw intra-shard draws so far, null interactions included.
  std::uint64_t interactions() const { return interactions_; }
  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t cross_swaps() const { return cross_swaps_; }
  std::uint64_t prefetch_batches() const { return prefetch_batches_; }
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  const core::Config& census() const { return counts_; }
  core::Count population() const {
    return static_cast<core::Count>(agents_.size());
  }
  // Number of enabled ordered agent pairs; 0 iff silent. Exact at
  // every epoch barrier.
  long long enabled_pairs() const { return enabled_pairs_; }

  std::size_t num_shards() const { return shards_.size(); }
  unsigned num_workers() const {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  // Adds this run's totals to the global registry (sim.shard.*); call
  // once, after the run. No-op while the registry is disabled.
  void publish_metrics() const;

 private:
  struct alignas(64) Shard {
    std::uint32_t* base = nullptr;
    std::uint64_t size = 0;
    util::Xoshiro256 rng{0};
    core::Config counts;
    std::uint64_t draws = 0;
    std::uint64_t productive = 0;
    std::uint64_t batches = 0;
  };

  void run_shard_batch(Shard& shard);
  // Claims shards off next_shard_ until the epoch's work is drained.
  void drain_shards(unsigned worker);
  void worker_loop(unsigned worker);
  // X uniform cross-shard transpositions (serial, between barriers).
  void exchange();
  // Re-derives counts_, enabled_pairs_ and the run totals from the
  // shards; serial, at every epoch barrier.
  void refresh_global();

  const PairRuleTable* table_;
  std::vector<std::uint32_t> agents_;
  std::vector<Shard> shards_;
  util::Xoshiro256 exchange_rng_;
  std::uint64_t batch_;
  unsigned exchange_shift_;

  core::Config counts_;
  long long enabled_pairs_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t interactions_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t cross_swaps_ = 0;
  std::uint64_t prefetch_batches_ = 0;
  std::atomic<std::uint64_t> steals_{0};

  // Epoch barrier: the main thread bumps epoch_gen_ and participates
  // as worker 0; spawned workers park on cv_work_ between epochs.
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_gen_ = 0;
  unsigned running_ = 0;
  bool shutdown_ = false;
  std::atomic<std::size_t> next_shard_{0};
};

}  // namespace sim
}  // namespace ppsc

#endif  // PPSC_SIM_SHARDED_H
