// Exact expected interaction counts via the absorbing-Markov-chain
// linear system over the protocol's reachability graph.
//
// The productive-step chain of both schedulers (sim/scheduler.h) jumps
// from configuration c to c' = fire(t, c) with probability
// weight(t, c) / W(c), where weight is the instantiation count and
// W(c) the total over enabled transitions. Silent configurations are
// absorbing, so the expected number of productive interactions to
// silence satisfies E[c] = 0 on silent c and
//   E[c] = 1 + sum_t (weight(t, c) / W(c)) * E[fire(t, c)]
// otherwise. The system is solved per SCC of petri::explore's
// reachability graph in reverse-topological order -- most protocol
// chains are progress-measured DAGs with small cyclic pockets, so the
// dense Gaussian elimination only ever sees the pockets.
//
// Numerics: long-double Gaussian elimination with partial pivoting;
// a pivot below 1e-12 of the column scale marks the system singular
// (silence unreachable from some recurrent configuration, i.e. the
// expectation is infinite) and the result uncomputed. For the graph
// sizes this is meant for (<= a few thousand configurations) the
// relative error is far below the ~1e-9 the benches print.

#ifndef PPSC_SIM_EXPECTED_TIME_H
#define PPSC_SIM_EXPECTED_TIME_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/protocol.h"

namespace ppsc {
namespace sim {

struct ExpectedTimeResult {
  // True iff expected_steps is exact. False when the state space was
  // truncated at max_configs, a dense SCC block exceeded the solver
  // cap, or the system is singular (silence unreachable somewhere).
  bool computed = false;
  // The exploration hit the max_configs budget.
  bool truncated = false;
  // Distinct configurations discovered (exact when not truncated).
  std::size_t reachable_configs = 0;
  // SCC structure of the chain: how many components the reverse-
  // topological sweep visited, and the largest dense block the
  // Gaussian elimination had to solve (1 for pure DAG chains).
  std::size_t sccs = 0;
  std::size_t largest_scc = 0;
  // Pivot rows eliminated across all per-SCC solves -- the cubic-cost
  // driver of the exact method.
  std::uint64_t pivots = 0;
  // E[productive interactions to silence] from the initial
  // configuration; 0 when not computed.
  double expected_steps = 0.0;
};

// Exact E[steps to silence] for the protocol started on `input`,
// exploring at most `max_configs` configurations.
ExpectedTimeResult expected_interactions_to_silence(
    const core::Protocol& protocol, const std::vector<core::Count>& input,
    std::size_t max_configs = 200000);

}  // namespace sim
}  // namespace ppsc

#endif  // PPSC_SIM_EXPECTED_TIME_H
