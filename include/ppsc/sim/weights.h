// The instantiation-weight law shared by the schedulers and the exact
// expected-time solver: a transition's weight is the number of
// distinct agent sets firing it, the product over places of
// C(available, need). Keeping the per-place factor here gives the law
// a single definition, so the sampler and the solver cannot silently
// diverge -- the e18 exact-vs-sampled agreement depends on them
// computing the very same chain.

#ifndef PPSC_SIM_WEIGHTS_H
#define PPSC_SIM_WEIGHTS_H

#include "core/protocol.h"

namespace ppsc {
namespace sim {

// C(available, need) as the running product (available - k) / (k + 1),
// k = 0..need-1. Exact in double far beyond any population the
// simulator will see; instantiate with long double for the solver.
template <typename Float>
Float binomial_instances(core::Count available, core::Count need) {
  if (available < need) return Float(0);
  Float weight(1);
  for (core::Count k = 0; k < need; ++k) {
    weight *= static_cast<Float>(available - k) / static_cast<Float>(k + 1);
  }
  return weight;
}

}  // namespace sim
}  // namespace ppsc

#endif  // PPSC_SIM_WEIGHTS_H
