// Census-only scheduler: the alias-table hybrid for small state
// spaces. When the census fits in L1 (states <= ~64), the productive
// chain can be sampled without any agent array at all: conditional on
// drawing a productive interaction, the uniform-pair scheduler fires
// rule cell (a, b) with probability w(a,b) / W where
// w(a,b) = c_a * (c_b - [a == b]) counts the enabled ordered pairs of
// that cell and W is their sum -- so drawing a cell from a Vose alias
// table over the w's and applying its outcome reproduces
// AgentSimulator's productive-step chain *exactly* (not just in
// distribution: it is the same conditional law; the empirical check
// lives with the other scheduler-equivalence tests). The null draws
// AgentSimulator spends between productive steps are skipped
// analytically: their count is geometric with success probability
// W / (n(n-1)), sampled in O(1) and reported through interactions().
//
// Per productive step: O(cells touching the <= 4 changed states)
// integer weight updates plus an O(R) alias rebuild (R = number of
// rule cells) -- entirely independent of the population, which is
// what makes 10^9-agent populations free. Weights are exact 64-bit
// integers (products c_a * c_b stay below 2^63 for populations up to
// ~3e9, the same bound AgentSimulator's enabled-pairs accounting
// lives under), so silence detection is exact: silent iff W == 0.

#ifndef PPSC_SIM_CENSUS_H
#define PPSC_SIM_CENSUS_H

#include <cstdint>
#include <vector>

#include "core/protocol.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace ppsc {
namespace sim {

class CensusSimulator {
 public:
  // The table must outlive the simulator. `initial` is a configuration
  // over the protocol's states.
  CensusSimulator(const PairRuleTable& table, const core::Config& initial,
                  std::uint64_t seed);

  // Fires one productive interaction (the null draws between it and
  // the previous one are skipped analytically and accounted to
  // interactions()). Returns false, firing nothing, iff silent.
  bool step();

  bool silent() const { return enabled_pairs_ == 0; }
  // Productive interactions so far.
  std::uint64_t steps() const { return steps_; }
  // Raw draws of the equivalent agent-array run, null interactions
  // included (the geometric skip totals plus the productive draws).
  std::uint64_t interactions() const { return interactions_; }
  // Analytically skipped null draws (subset of interactions()).
  std::uint64_t null_skipped() const { return null_skipped_; }
  // Alias-table rebuilds so far (one per productive step that changed
  // any weight; the weight updates themselves are incremental).
  std::uint64_t rebuilds() const { return rebuilds_; }

  const core::Config& census() const { return counts_; }
  core::Count population() const { return population_; }
  // Number of enabled ordered agent pairs; 0 iff silent. Exact.
  long long enabled_pairs() const { return enabled_pairs_; }

  // Adds this run's totals to the global registry (sim.census.*); call
  // once, after the run. No-op while the registry is disabled.
  void publish_metrics() const;

 private:
  struct Cell {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t first = 0;   // successor of a
    std::uint32_t second = 0;  // successor of b
  };

  long long cell_weight(const Cell& cell) const;
  void rebuild_alias();

  const PairRuleTable* table_;
  util::Xoshiro256 rng_;
  core::Config counts_;
  core::Count population_ = 0;

  std::vector<Cell> cells_;
  // cells_of_state_[q]: indices of cells with a == q or b == q.
  std::vector<std::vector<std::uint32_t>> cells_of_state_;
  std::vector<std::uint64_t> touched_;
  std::uint64_t stamp_ = 0;
  std::vector<long long> weights_;
  long long enabled_pairs_ = 0;

  // Vose alias table over cells_, valid while !dirty_. The scratch
  // vectors are members so the per-step rebuild allocates nothing.
  std::vector<double> alias_prob_;
  std::vector<std::uint32_t> alias_of_;
  std::vector<double> scratch_scaled_;
  std::vector<std::uint32_t> scratch_small_;
  std::vector<std::uint32_t> scratch_large_;
  bool dirty_ = true;

  std::uint64_t steps_ = 0;
  std::uint64_t interactions_ = 0;
  std::uint64_t null_skipped_ = 0;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace sim
}  // namespace ppsc

#endif  // PPSC_SIM_CENSUS_H
