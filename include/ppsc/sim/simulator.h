// High-level simulation entry points, built on the scheduler
// architecture in sim/scheduler.h: run_to_silence drives a
// CountSimulator (exact silence detection for any conservative net),
// while measure_convergence routes every run through the agent-array
// fast path whenever the protocol compiles to a PairRuleTable and
// falls back to the count scheduler otherwise. Steps always count
// *productive* interactions -- for width-2 rules both schedulers
// reproduce the classical uniform random-pair scheduler restricted to
// productive interactions -- and a run is silent when no transition is
// enabled.

#ifndef PPSC_SIM_SIMULATOR_H
#define PPSC_SIM_SIMULATOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/protocol.h"

namespace ppsc {
namespace sim {

// Which scheduler drives a run. kAuto picks by population and state
// count (see docs/sim-sharding.md for the heuristic); the explicit
// values force a path. Paths that require a PairRuleTable (agent,
// sharded, census) fall back to the count scheduler when the protocol
// does not compile to one -- every scheduler shares the productive
// step law, so forcing is an ablation knob, never a semantic change.
enum class SchedulerChoice {
  kAuto,
  kAgent,
  kSharded,
  kCensus,
  kCount,
};

struct RunOptions {
  // Give up (non-converged) after this many productive interactions.
  std::uint64_t max_steps = 20000000;
  // Base seed; run r of a measurement uses seed + r.
  std::uint64_t seed = 0x5eed;
  // Agent-array fast path only: poll the silence flag every this many
  // drawn interactions. Recorded steps count productive interactions,
  // which stop occurring once the run is silent, so a larger interval
  // never distorts statistics -- it only trades a few wasted draws
  // after silence for a tighter hot loop. The count scheduler detects
  // silence exactly on every step and ignores this.
  std::uint64_t silence_check_interval = 16;
  // Scheduler selection for measure_convergence runs; run_to_silence
  // always uses the count scheduler.
  SchedulerChoice scheduler = SchedulerChoice::kAuto;
  // Sharded path only: shard count (0 = the ShardedOptions default).
  std::size_t shards = 0;
};

struct OutputSummary {
  bool has_one = false;
  bool has_zero = false;

  // All agents output 1 (and there is at least one agent).
  bool exactly_one() const { return has_one && !has_zero; }
  // No agent outputs 1.
  bool subset_of_zero() const { return !has_one; }
  // Every agent agrees with `expected`; vacuously true for the empty
  // population. This is the consensus test measure_convergence scores
  // with, matching verify::check_input's convention that an empty
  // input is correct no matter what the predicate says.
  bool unanimous(bool expected) const {
    return expected ? !has_zero : !has_one;
  }
};

// The shared output-census accounting path: collapses a configuration
// into its output summary. Every scheduler's census() feeds this.
OutputSummary summarize_output(const core::Protocol& protocol,
                               const core::Config& config);

struct SilenceRun {
  bool silent = false;
  std::uint64_t steps = 0;
  core::Config final_config;
  OutputSummary final_output;
};

SilenceRun run_to_silence(const core::Protocol& protocol,
                          const std::vector<core::Count>& input,
                          const RunOptions& options = {});

struct ConvergenceStats {
  std::size_t runs = 0;
  // Runs that reached silence within the step budget.
  std::size_t converged = 0;
  // Converged runs whose consensus matches the predicate.
  std::size_t correct = 0;
  // Over all runs; non-converged runs contribute their step budget.
  double mean_steps = 0.0;
  // Largest observed per-run step count (not the RunOptions::max_steps
  // budget, which bounds it from above).
  double max_steps_observed = 0.0;
};

// Serial convergence sweep: runs `runs` independent simulations with
// seeds options.seed + r and aggregates. Equivalent to the parallel
// sweep in sim/parallel.h with one thread (it is implemented on it).
ConvergenceStats measure_convergence(const core::ConstructedProtocol& cp,
                                     const std::vector<core::Count>& input,
                                     std::size_t runs,
                                     const RunOptions& options = {});

}  // namespace sim
}  // namespace ppsc

#endif  // PPSC_SIM_SIMULATOR_H
