// Random-scheduler simulation. Each step draws one enabled transition
// instance uniformly at random: a transition's weight is the number of
// distinct agent sets that can fire it (the product of binomials of its
// pre-multiset), which for width-2 rules reproduces the classical
// uniform random-pair scheduler restricted to productive interactions.
// Steps therefore count productive interactions; a run is silent when
// no transition is enabled.

#ifndef PPSC_SIM_SIMULATOR_H
#define PPSC_SIM_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "core/protocol.h"

namespace ppsc {
namespace sim {

struct RunOptions {
  // Give up (non-converged) after this many productive interactions.
  std::uint64_t max_steps = 20000000;
  // Base seed; run r of a measurement uses seed + r.
  std::uint64_t seed = 0x5eed;
};

struct OutputSummary {
  bool has_one = false;
  bool has_zero = false;

  // All agents output 1 (and there is at least one agent).
  bool exactly_one() const { return has_one && !has_zero; }
  // No agent outputs 1.
  bool subset_of_zero() const { return !has_one; }
  // Every agent agrees with `expected`; vacuously true for the empty
  // population. This is the consensus test measure_convergence scores
  // with, matching verify::check_input's convention that an empty
  // input is correct no matter what the predicate says.
  bool unanimous(bool expected) const {
    return expected ? !has_zero : !has_one;
  }
};

struct SilenceRun {
  bool silent = false;
  std::uint64_t steps = 0;
  core::Config final_config;
  OutputSummary final_output;
};

SilenceRun run_to_silence(const core::Protocol& protocol,
                          const std::vector<core::Count>& input,
                          const RunOptions& options = {});

struct ConvergenceStats {
  std::size_t runs = 0;
  // Runs that reached silence within the step budget.
  std::size_t converged = 0;
  // Converged runs whose consensus matches the predicate.
  std::size_t correct = 0;
  // Over all runs; non-converged runs contribute max_steps.
  double mean_steps = 0.0;
  double max_steps = 0.0;
};

ConvergenceStats measure_convergence(const core::ConstructedProtocol& cp,
                                     const std::vector<core::Count>& input,
                                     std::size_t runs,
                                     const RunOptions& options = {});

}  // namespace sim
}  // namespace ppsc

#endif  // PPSC_SIM_SIMULATOR_H
