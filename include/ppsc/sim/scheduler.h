// Scheduler architecture for the sim subsystem.
//
// Four interchangeable schedulers drive a protocol's interaction
// dynamics and share one census/output accounting path (see
// summarize_output in sim/simulator.h). This header holds the two
// original ones plus the PairRuleTable they all compile against; the
// large-population ShardedSimulator lives in sim/sharded.h and the
// small-state CensusSimulator in sim/census.h, and
// sim/parallel.h's planned_scheduler dispatches among all four:
//
//  * AgentSimulator -- the classical uniform-random-pair scheduler over
//    an explicit agent array: each step draws an ordered pair of
//    distinct agents uniformly at random and fires the width-2 rule
//    their states enable, if any. O(1) per drawn interaction plus
//    O(partner-degree) silence bookkeeping per productive one, so
//    populations of millions of agents are cheap. Requires a
//    PairRuleTable, i.e. a deterministic pairwise net.
//  * CountSimulator -- the instantiation-weighted transition sampler
//    extracted from the original monolithic run_to_silence: each step
//    fires one enabled transition with probability proportional to its
//    number of distinct agent instantiations. Works for any
//    conservative net (arbitrary width), at a per-step cost in the
//    number of transitions and the population-independent count vector.
//
// Conditional on drawing a productive interaction, the agent scheduler
// selects transition t with probability weight(t) / total -- exactly
// the count scheduler's law -- so the two schedulers' productive-step
// chains are identical in distribution on deterministic pairwise nets
// (tests/test_scheduler.cpp checks this empirically). Both report
// progress in *productive* interactions via steps(), making their
// convergence statistics directly comparable; the agent scheduler
// additionally counts raw draws via interactions().

#ifndef PPSC_SIM_SCHEDULER_H
#define PPSC_SIM_SCHEDULER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/protocol.h"
#include "util/rng.h"

namespace ppsc {
namespace sim {

// Width-2 rules compiled into a dense state x state lookup: cell (a, b)
// holds the successor states of an ordered agent pair in states (a, b),
// or kNoRule. The table is symmetric as a multiset map -- a rule with
// pre {a, b} fills both (a, b) and (b, a), with the outcome swapped --
// so the ordered uniform pair draw implements the unordered interaction.
class PairRuleTable {
 public:
  static constexpr std::uint32_t kNoRule = 0xffffffffu;

  struct Outcome {
    std::uint32_t first = kNoRule;   // successor of the first agent
    std::uint32_t second = kNoRule;  // successor of the second agent
  };

  // Compiles `protocol` into a pair table. Returns std::nullopt when the
  // net is not deterministic pairwise: some transition has width != 2,
  // or two transitions share a pre pair *with different outcomes* (a
  // duplicated identical transition is still deterministic and compiles;
  // the count scheduler remains the fallback for the genuinely
  // nondeterministic cases, with the same productive-step law).
  static std::optional<PairRuleTable> build(const core::Protocol& protocol);

  std::size_t num_states() const { return num_states_; }

  // The outcome for an ordered state pair, or nullptr when the pair has
  // no rule (a null interaction).
  const Outcome* rule(std::uint32_t a, std::uint32_t b) const {
    const Outcome& cell = cells_[a * num_states_ + b];
    return cell.first == kNoRule ? nullptr : &cell;
  }

  // States b with a rule against a (including b == a), ascending. The
  // agent scheduler's incremental silence bookkeeping walks these.
  const std::vector<std::uint32_t>& partners(std::size_t a) const {
    return partners_[a];
  }

 private:
  std::size_t num_states_ = 0;
  std::vector<Outcome> cells_;  // num_states^2, row-major
  std::vector<std::vector<std::uint32_t>> partners_;
};

// Uniform random-pair scheduler over an explicit agent array. Silence
// (no unordered agent pair enables a rule) is tracked incrementally:
// enabled_pairs() maintains the number of enabled *ordered* agent pairs
// under count updates, so silent() is O(1) at any time.
//
// Observability: when the obs registry is runtime-enabled at
// construction, step() takes an instrumented path that additionally
// accumulates the silence-bookkeeping work (partner-table entries
// walked per count update) into scan_work(). The two paths are
// compiled from one template, so the uninstrumented path carries zero
// metric code -- it is the same machine code a -DPPSC_OBS=OFF build
// produces, which is what the e11 overhead guard measures against.
class AgentSimulator {
 public:
  // The table must outlive the simulator. `initial` is a configuration
  // over the protocol's states (agent counts per state).
  AgentSimulator(const PairRuleTable& table, const core::Config& initial,
                 std::uint64_t seed);

  // Draws one ordered pair of distinct agents uniformly at random and
  // fires its rule if one exists. Returns true iff the interaction was
  // productive. Populations below 2 only ever draw null interactions.
  bool step() { return obs_ ? step_impl<true>() : step_impl<false>(); }

  bool silent() const { return enabled_pairs_ == 0; }
  // Productive interactions so far (the unit every convergence
  // statistic is measured in).
  std::uint64_t steps() const { return steps_; }
  // Raw draws so far, null interactions included.
  std::uint64_t interactions() const { return interactions_; }
  // Partner-table entries walked by the incremental silence
  // bookkeeping; 0 unless the obs registry was enabled at construction.
  std::uint64_t scan_work() const { return scan_work_; }

  // Adds this run's totals to the global registry (sim.agent.*); call
  // once, after the run. No-op while the registry is disabled.
  void publish_metrics() const;

  // Current per-state agent counts.
  const core::Config& census() const { return counts_; }
  core::Count population() const {
    return static_cast<core::Count>(agents_.size());
  }

  // Number of enabled ordered agent pairs (i, j), i != j; 0 iff silent.
  long long enabled_pairs() const { return enabled_pairs_; }

 private:
  template <bool kObs>
  bool step_impl();
  // Sum of enabled ordered pair counts over cells involving `state`.
  long long pair_contribution(std::size_t state) const;
  // Applies one count delta while keeping enabled_pairs_ exact.
  template <bool kObs>
  void change_count(std::size_t state, core::Count delta);

  const PairRuleTable* table_;
  util::Xoshiro256 rng_;
  std::vector<std::uint32_t> agents_;
  core::Config counts_;
  long long enabled_pairs_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t interactions_ = 0;
  std::uint64_t scan_work_ = 0;
  bool obs_ = false;
};

// Instantiation-weighted transition sampler with the incremental
// weight cache (only transitions whose pre touches the fired delta are
// recomputed; silence is detected from the exact per-transition
// weights, never the drift-prone accumulated total).
class CountSimulator {
 public:
  CountSimulator(const core::Protocol& protocol, core::Config initial,
                 std::uint64_t seed);

  // Fires one enabled transition, weighted by instantiation count.
  // Returns false (and fires nothing) iff the configuration is silent.
  bool step();

  bool silent() const { return num_active_ == 0; }
  std::uint64_t steps() const { return steps_; }
  const core::Config& census() const { return config_; }
  // Incremental weight-cache recomputations performed so far. Counted
  // unconditionally: one increment next to a binomial recompute is far
  // below measurement noise on this scheduler.
  std::uint64_t weight_updates() const { return weight_updates_; }

  // Adds this run's totals to the global registry (sim.count.*); call
  // once, after the run. No-op while the registry is disabled.
  void publish_metrics() const;

 private:
  struct SparseTransition {
    std::vector<std::pair<std::size_t, core::Count>> pre;
    std::vector<std::pair<std::size_t, core::Count>> delta;  // post - pre
  };

  double instance_weight(const SparseTransition& t) const;

  util::Xoshiro256 rng_;
  core::Config config_;
  std::vector<SparseTransition> transitions_;
  // dependents_[q]: transitions whose pre touches state q.
  std::vector<std::vector<std::size_t>> dependents_;
  std::vector<std::uint64_t> touched_;
  std::uint64_t stamp_ = 0;
  std::vector<double> weights_;
  double total_ = 0.0;
  double peak_total_ = 0.0;  // largest total since the last rebuild
  std::size_t num_active_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t weight_updates_ = 0;
};

// The name the scheduler-architecture docs use for the count-based
// scheduler; identical type.
using CountScheduler = CountSimulator;

}  // namespace sim
}  // namespace ppsc

#endif  // PPSC_SIM_SCHEDULER_H
