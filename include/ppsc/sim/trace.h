// Census traces: per-state and per-output population censuses sampled
// at geometrically spaced productive-step counts along one run. The
// geometric schedule (powers of two, plus the initial and final
// configurations) keeps traces logarithmic in run length while still
// resolving both the early mixing phase and the late epidemic spread
// the e19 profiles visualize.

#ifndef PPSC_SIM_TRACE_H
#define PPSC_SIM_TRACE_H

#include <cstdint>
#include <vector>

#include "core/protocol.h"

namespace ppsc {
namespace sim {

struct CensusPoint {
  // Productive interactions executed when the census was taken.
  std::uint64_t step = 0;
  // Agents per state (a copy of the configuration at that step).
  core::Config census;
  // Agents aggregated by their state's output bit. output_star is
  // reserved for protocols with partial output maps; the protocols
  // here have total two-valued outputs, so it is always 0.
  core::Count output_zero = 0;
  core::Count output_one = 0;
  core::Count output_star = 0;
};

struct CensusTrace {
  // The run reached silence within the step budget.
  bool converged = false;
  // Productive interactions executed in total.
  std::uint64_t total_steps = 0;
  // Censuses at steps 0, 1, 2, 4, 8, ... and at the final step.
  std::vector<CensusPoint> points;
};

// Runs the protocol on `input` (agent-array fast path when the
// protocol compiles to a PairRuleTable, count scheduler otherwise) for
// at most `max_steps` productive interactions, recording censuses on
// the geometric schedule.
CensusTrace record_census_trace(const core::Protocol& protocol,
                                const std::vector<core::Count>& input,
                                std::uint64_t max_steps, std::uint64_t seed);

}  // namespace sim
}  // namespace ppsc

#endif  // PPSC_SIM_TRACE_H
