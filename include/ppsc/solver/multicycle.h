// Small sign-compatible multicycle replacements (Lemma 7.3).
//
// A multicycle over a control-state net is a multiset of cycles,
// recorded by its Parikh image phi (occurrences per edge); phi is a
// circulation: at every control state the in- and out-flows balance.
// Lemma 7.3 replaces a multicycle that repeats every used edge at
// least k times by a much smaller one with the same edge support and a
// displacement (net token effect on the underlying places) of the same
// sign everywhere -- the pumping argument of Section 8 only needs the
// signs, so the replacement can stand in for the big multicycle.
//
// This reproduction implements the repetition case the Theorem 4.3
// pipeline (bench E9) exercises: the replacement is phi / gcd(phi),
// which divides every entry, preserves the support, and scales the
// displacement by 1/gcd(phi) -- sign-compatible exactly. When phi is a
// k-fold multiple (phi = k * phi0, the shape the pipeline produces),
// gcd(phi) >= k and the replacement length is at most |phi| / k.

#ifndef PPSC_SOLVER_MULTICYCLE_H
#define PPSC_SOLVER_MULTICYCLE_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "petri/control_net.h"

namespace ppsc {
namespace solver {

struct Multicycle {
  // Occurrences per control-net edge.
  std::vector<std::uint64_t> parikh;
  // Total number of edge instances, |Theta'|.
  std::uint64_t length = 0;
  // Net token effect on the underlying places (the quantity whose signs
  // Lemma 7.3 preserves); equals cnet.displacement(parikh).
  std::vector<petri::Count> displacement;
  // Realization as one closed walk (Euler circuit of the support
  // multigraph) when the support is connected; nullopt otherwise.
  std::optional<std::vector<std::size_t>> walk;
};

// Replacement for the multicycle with Parikh image `phi` on `cnet`.
// `q_mask` flags, over the places of the net the control states encode,
// the bounded places Q -- the underlying places of `cnet` are exactly
// the places outside Q, and sign-compatibility is enforced on all of
// them. Returns std::nullopt when phi is empty, not a circulation, or
// some used edge occurs fewer than `k` times (the lemma's hypothesis).
std::optional<Multicycle> small_multicycle(
    const petri::ControlStateNet& cnet, const std::vector<std::uint64_t>& phi,
    const std::vector<bool>& q_mask, std::uint64_t k);

// log2 of Lemma 7.3's cap on the replacement length |Theta'|, in the
// reproduction's convention:
// (|E| + |P|) * log2(2 + |S| + |P| * ||T||_inf), with E the control
// edges, S the control states, P the underlying places and T their
// Petri net. Bench E8 checks measured replacement lengths against it.
double log2_lemma73_length_bound(const petri::ControlStateNet& cnet);

}  // namespace solver
}  // namespace ppsc

#endif  // PPSC_SOLVER_MULTICYCLE_H
