// Pottier-style minimal-support solver for homogeneous integer systems
// (the Hilbert basis of A x = 0, x >= 0).
//
// The Hilbert basis of a homogeneous system is the set of its minimal
// nonzero nonnegative integer solutions under the componentwise order;
// every solution is a nonnegative integer combination of basis
// elements. Pottier's bound [12 in the paper] caps the l1-norm of every
// basis element by (2 + sum_j ||a_j||_inf)^d with d the number of
// variables, which is what makes the Lemma 7.3 multicycle replacement
// (solver/multicycle.h) finite and small: the replacement multicycle is
// a basis element of the circulation system of the control graph.
//
// Conventions:
//
//  * hilbert_basis runs the Contejean-Devie completion: the frontier
//    starts at the unit vectors and a vector t grows by +e_i only in
//    directions with <A t, A e_i> < 0 (strictly toward the kernel),
//    pruning every vector that dominates an already-found solution.
//    With the default options the enumeration closes and `complete` is
//    true: the basis is exactly the Hilbert basis. When a cap is hit
//    (max_nodes frontier pops or max_norm on a vector's l1-norm),
//    `complete` is false and the basis is a sound under-approximation
//    -- every returned element is a genuine minimal solution, some may
//    be missing. Callers must gate completeness-dependent conclusions
//    on the flag (bench E8 skips incomplete systems).
//  * The zero solution is never part of the basis; a system with no
//    nonzero nonnegative solution has an empty basis with `complete`
//    true (e.g. a row with all-positive coefficients).
//  * Duplicate or all-zero rows are allowed; an all-zero system's basis
//    is the unit vectors.

#ifndef PPSC_SOLVER_DIOPHANTINE_H
#define PPSC_SOLVER_DIOPHANTINE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppsc {
namespace solver {

// A x = 0 with integer coefficients; each row has num_vars entries.
struct HomogeneousSystem {
  std::size_t num_vars = 0;
  std::vector<std::vector<std::int64_t>> rows;
};

struct HilbertOptions {
  // Frontier vectors examined before giving up (completeness lost).
  std::uint64_t max_nodes = 1u << 20;
  // l1-norm cap per frontier vector (completeness lost when a vector
  // would exceed it).
  std::uint64_t max_norm = 1u << 12;
};

struct HilbertBasisResult {
  // Minimal nonzero solutions, in discovery order.
  std::vector<std::vector<std::uint64_t>> basis;
  // True iff the completion closed without hitting a cap, i.e. `basis`
  // is the full Hilbert basis.
  bool complete = false;
  // Frontier vectors examined (the solver.hilbert.nodes counter).
  std::uint64_t nodes = 0;
};

// Hilbert basis of `system` by bounded Contejean-Devie completion.
// Throws std::invalid_argument on a row whose size != num_vars.
HilbertBasisResult hilbert_basis(const HomogeneousSystem& system,
                                 const HilbertOptions& options = {});

// Sum of entries (the norm Pottier's bound caps).
std::uint64_t norm_l1(const std::vector<std::uint64_t>& x);

// log2 of Pottier's bound (2 + sum_j ||a_j||_inf)^d, d = num_vars:
// every minimal solution x of the system satisfies
// log2 ||x||_1 <= log2_pottier_bound(system).
double log2_pottier_bound(const HomogeneousSystem& system);

}  // namespace solver
}  // namespace ppsc

#endif  // PPSC_SOLVER_DIOPHANTINE_H
