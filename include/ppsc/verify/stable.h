// Exhaustive stable-computation checker (the Section 2 semantics).
//
// A protocol stably computes a predicate phi on input x iff every fair
// execution from the initial configuration reaches, and never leaves,
// configurations in which all agents output phi(x). Under the standard
// population-protocol fairness this is equivalent to: every bottom SCC
// of the (finite, by conservation) reachability graph consists solely
// of configurations with unanimous output phi(x).
//
// check_up_to materializes the full reachability graph for every input
// vector in [0, bound]^arity and checks exactly that condition, so a
// "verified" verdict is a machine-checked proof for those inputs.

#ifndef PPSC_VERIFY_STABLE_H
#define PPSC_VERIFY_STABLE_H

#include <cstddef>
#include <string>
#include <vector>

#include "core/protocol.h"

namespace ppsc {
namespace verify {

struct Verdict {
  std::vector<core::Count> input;
  bool ok = false;
  // Size of the reachability graph explored for this input (1 for the
  // empty population, which is vacuously correct).
  std::size_t reachable_configs = 0;
  // Human-readable description of the first failure, empty when ok.
  std::string detail;
};

struct CheckResult {
  std::vector<Verdict> verdicts;

  bool verified() const {
    for (const Verdict& v : verdicts) {
      if (!v.ok) return false;
    }
    return true;
  }
};

struct CheckOptions {
  // Abort (throwing std::runtime_error) if a single input's reachability
  // graph exceeds this many configurations.
  std::size_t max_configs = 5000000;
};

// Checks every input vector in [0, bound]^arity.
CheckResult check_up_to(const core::Protocol& protocol,
                        const core::Predicate& predicate, core::Count bound,
                        const CheckOptions& options = {});

// Checks a single input vector.
Verdict check_input(const core::Protocol& protocol,
                    const core::Predicate& predicate,
                    const std::vector<core::Count>& input,
                    const CheckOptions& options = {});

}  // namespace verify
}  // namespace ppsc

#endif  // PPSC_VERIFY_STABLE_H
