// Well-specification and predicate extraction (the decision problem the
// introduction recalls is as hard as Petri-net reachability in
// general; on bounded inputs the library decides it exactly).
//
// A protocol is *well-specified* on an input iff every fair execution
// from the initial configuration stabilizes to the same output
// consensus -- equivalently (under population-protocol fairness, and
// by the finiteness conservation gives): every bottom SCC of the
// reachability graph is output-unanimous, and all bottom SCCs agree on
// the same value. Unlike verify/stable.h this checker is *not* told a
// predicate: it extracts the computed value per input, so the caller
// can compare the extracted truth table against an intended predicate
// (bench E16) or feed inputs nobody hand-picked.
//
// Conventions:
//
//  * The empty population (leaderless protocol, all-zero input)
//    computes 0: zero agents never witness output 1, and the verdict
//    must be definite for the truth table to be total. This composes
//    with verify/stable.h's vacuous-pass convention -- an empty
//    population is consistent with any predicate there, and extracts
//    false here.
//  * value == std::nullopt iff the input is not well-specified (some
//    bottom SCC mixes outputs, or two bottom SCCs disagree); verified()
//    is true iff every checked input has a definite value.
//  * The max_configs cap mirrors verify/stable.h: exceeding it throws
//    rather than guessing.

#ifndef PPSC_VERIFY_WELLSPEC_H
#define PPSC_VERIFY_WELLSPEC_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.h"

namespace ppsc {
namespace verify {

struct WellSpecVerdict {
  std::vector<core::Count> input;
  // The extracted consensus; nullopt when the outcome depends on the
  // schedule (not well-specified on this input).
  std::optional<bool> value;
  std::size_t reachable_configs = 0;
  // First obstruction, empty when a consensus exists.
  std::string detail;

  bool ok() const { return value.has_value(); }
};

struct WellSpecResult {
  std::vector<WellSpecVerdict> verdicts;

  bool verified() const {
    for (const WellSpecVerdict& v : verdicts) {
      if (!v.ok()) return false;
    }
    return true;
  }
};

struct WellSpecOptions {
  // Abort (throwing std::runtime_error) if a single input's
  // reachability graph exceeds this many configurations.
  std::size_t max_configs = 5000000;
};

// Extracts the consensus for a single input vector.
WellSpecVerdict classify_input(const core::Protocol& protocol,
                               const std::vector<core::Count>& input,
                               const WellSpecOptions& options = {});

// Checks every input vector in [0, bound]^arity.
WellSpecResult check_well_specification_up_to(
    const core::Protocol& protocol, core::Count bound,
    const WellSpecOptions& options = {});

}  // namespace verify
}  // namespace ppsc

#endif  // PPSC_VERIFY_WELLSPEC_H
