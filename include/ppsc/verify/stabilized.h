// Stabilization certificates (the Section 5 / Lemma 5.4 semantics).
//
// Fix a net T over d states and a set F of accepting states (f_mask).
// A configuration rho is *stabilized* iff no configuration reachable
// from rho puts a token on a state outside F -- the paper's notion of
// a configuration that has already committed to its consensus. Unlike
// the exhaustive checker in verify/stable.h, the decision here is a
// *certificate* query: one petri/coverability backward fixpoint per
// non-accepting state q computes the minimal basis of the upward-closed
// set of markings from which q is coverable, and rho is stabilized iff
// it covers no basis element. The bases are finite (Dickson), so the
// certificate decides stabilization for *every* configuration at once,
// not just the explored ones -- this is the semantic difference between
// the two verify engines, spelled out in docs/verification.md.
//
// Lemma 5.4 says the stabilized set is characterized by small values:
// there is a threshold h (the paper proves
// h = ||T||_inf * (1 + ||T||_inf)^(d^d) suffices, see
// bounds::log2_lemma54_h) such that rho is stabilized iff its
// h-truncation min(rho, h) is. minimal_effective_h searches for the
// smallest such h empirically, which bench E5 tabulates against the
// formula -- the measured h is tiny, the lemma's is a worst case.

#ifndef PPSC_VERIFY_STABILIZED_H
#define PPSC_VERIFY_STABILIZED_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "petri/petri_net.h"

namespace ppsc {
namespace verify {

// The backward-coverability certificate: for each non-accepting state,
// the minimal basis of markings from which that state can be covered.
// Once built, stabilization of any configuration is a basis scan --
// no further exploration.
struct StabilizationCertificate {
  std::size_t num_states = 0;
  // States outside F, in ascending order.
  std::vector<std::size_t> bad_states;
  // bases[i]: minimal markings from which bad_states[i] is coverable
  // (petri::backward_basis of the unit marking on that state).
  std::vector<std::vector<petri::Config>> bases;

  // True iff rho covers no basis element, i.e. no reachable
  // configuration ever marks a non-accepting state.
  bool stabilized(const petri::Config& rho) const;
};

// Builds the certificate: one backward fixpoint per non-accepting
// state. f_mask[q] == true marks q as accepting; its size must equal
// net.num_states(). `max_basis` is the coverability safety valve.
StabilizationCertificate stabilization_certificate(
    const petri::PetriNet& net, const std::vector<bool>& f_mask,
    std::size_t max_basis = 1u << 22);

// One-shot query: is rho stabilized w.r.t. F? Equivalent to
// stabilization_certificate(net, f_mask).stabilized(rho); prefer the
// certificate when querying many configurations.
bool is_stabilized(const petri::PetriNet& net, const petri::Config& rho,
                   const std::vector<bool>& f_mask);

// Smallest h in [1, limit] such that truncation at h preserves the
// stabilized verdict on every probed configuration: all sigma with
// entries <= h + probe_height (plus every seed, whatever its size)
// satisfy stabilized(sigma) == stabilized(min(sigma, h)). Returns
// std::nullopt when no h <= limit passes. The probe box is enumerated
// exhaustively -- (h + probe_height + 1)^d configurations per
// candidate -- so this is for the small nets E5 measures; throws
// std::invalid_argument when the box would exceed 2^24 configurations.
std::optional<std::uint64_t> minimal_effective_h(
    const petri::PetriNet& net, const std::vector<petri::Config>& seeds,
    const std::vector<bool>& f_mask, std::uint64_t limit,
    std::uint64_t probe_height);

}  // namespace verify
}  // namespace ppsc

#endif  // PPSC_VERIFY_STABILIZED_H
