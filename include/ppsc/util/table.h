// Plain-text table output shared by all bench drivers, plus the numeric
// formatting helper the tables use. Output is deterministic so bench
// stdout can serve as a golden regression artifact.

#ifndef PPSC_UTIL_TABLE_H
#define PPSC_UTIL_TABLE_H

#include <string>
#include <vector>

namespace ppsc {
namespace util {

// Formats with `significant` significant digits (printf %g semantics).
std::string format_double(double value, int significant);

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Rows shorter than the header are padded with empty cells; longer
  // rows throw std::invalid_argument.
  void add_row(std::vector<std::string> cells);

  void print() const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace util
}  // namespace ppsc

#endif  // PPSC_UTIL_TABLE_H
