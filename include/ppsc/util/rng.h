// Deterministic xoshiro256** generator so benches and simulations are
// reproducible across platforms (std::mt19937 distributions are not
// specified bit-exactly; this is).

#ifndef PPSC_UTIL_RNG_H
#define PPSC_UTIL_RNG_H

#include <cstdint>

namespace ppsc {
namespace util {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  // Uniform in [0, bound); bound 0 returns 0. Uses Lemire rejection so
  // the result is unbiased.
  std::uint64_t below(std::uint64_t bound);

  // Uniform double in [0, 1).
  double unit();

 private:
  std::uint64_t state_[4];
};

}  // namespace util
}  // namespace ppsc

#endif  // PPSC_UTIL_RNG_H
