// Deterministic xoshiro256** generator so benches and simulations are
// reproducible across platforms (std::mt19937 distributions are not
// specified bit-exactly; this is).

#ifndef PPSC_UTIL_RNG_H
#define PPSC_UTIL_RNG_H

#include <cstdint>

namespace ppsc {
namespace util {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  // Uniform in [0, bound); bound 0 returns 0. Uses Lemire rejection so
  // the result is unbiased.
  std::uint64_t below(std::uint64_t bound);

  // Uniform double in [0, 1).
  double unit();

  // Advances the state by 2^128 draws in O(1): the canonical xoshiro
  // jump polynomial. Two generators seeded identically and separated
  // by distinct jump counts produce non-overlapping subsequences for
  // any realistic draw budget, which is what makes stream() safe.
  void jump();

  // Advances by 2^192 draws; reserves a second axis of separation so
  // auxiliary generators (e.g. a cross-shard exchange stream) can
  // never collide with the jump-derived worker streams.
  void long_jump();

  // Stream `index` of the family derived from `seed`: the seeded
  // generator jumped `index` times. Stream 0 is bit-identical to
  // Xoshiro256(seed), so a 1-stream consumer is exactly the plain
  // generator -- the sharded scheduler's 1-shard compatibility
  // contract rests on this.
  static Xoshiro256 stream(std::uint64_t seed, std::uint64_t index);

 private:
  std::uint64_t state_[4];
};

}  // namespace util
}  // namespace ppsc

#endif  // PPSC_UTIL_RNG_H
