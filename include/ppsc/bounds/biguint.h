// Minimal arbitrary-precision unsigned integer, just enough to evaluate
// the paper's Theorem 4.3 bound exactly (numbers like 2^65536) and
// cross-check the log-space formulas against real digits.

#ifndef PPSC_BOUNDS_BIGUINT_H
#define PPSC_BOUNDS_BIGUINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ppsc {
namespace bounds {

class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t value);

  static BigUint two_pow(std::uint64_t exponent);
  static BigUint pow(std::uint64_t base, std::uint64_t exponent);

  BigUint& operator*=(const BigUint& other);
  BigUint operator*(const BigUint& other) const;
  bool operator==(const BigUint& other) const { return limbs_ == other.limbs_; }

  bool is_zero() const { return limbs_.empty(); }
  std::size_t bit_length() const;

  // Number of decimal digits (1 for zero).
  std::size_t digits10() const;

  // log2 of the value as a double; -inf for zero.
  double log2() const;

  std::string to_string() const;

 private:
  void trim();

  // Base 2^32, little-endian; empty means zero.
  std::vector<std::uint32_t> limbs_;
};

}  // namespace bounds
}  // namespace ppsc

#endif  // PPSC_BOUNDS_BIGUINT_H
