// The inverse-Ackermann state lower bound of Czerner-Esparza-Leroux
// (arXiv:2102.11619), which the paper's Corollary 4.4 supersedes.
//
// We use the diagonal Ackermann-Peter function A(k) = Ack(k, k):
// A(1) = 3, A(2) = 7, A(3) = 61, A(4) = 2^^7 - 3 (a power tower of
// seven 2's). The CE21 bound for deciding (i >= n) is A^{-1}(n), the
// largest k with A(k) <= n (clamped to >= 1) -- which is frozen at 3
// for every n between 61 and A(4), i.e. for every threshold any bench
// will ever print.

#ifndef PPSC_BOUNDS_ACKERMANN_H
#define PPSC_BOUNDS_ACKERMANN_H

namespace ppsc {
namespace bounds {

// A^{-1}(n) given log2(n). log2(A(4)) ~ 2^65536 overflows a double, so
// every representable log2_n above log2(61) maps to 3.
int inverse_ackermann_log2(double log2_n);

}  // namespace bounds
}  // namespace ppsc

#endif  // PPSC_BOUNDS_ACKERMANN_H
