// The paper's bound formulas, in the exact numeric conventions the bench
// tables and unit tests pin down.
//
// All thresholds n are passed as log2(n) so the formulas stay evaluable
// across the 80 orders of magnitude E10 sweeps (up to n = 2^(10^15)),
// far beyond what any integer or double value of n could represent.
//
// Conventions (fixed here, regression-tested in tests/test_bounds.cpp):
//
//  * Theorem 4.3 (exact form): a protocol with d states, width w and L
//    leaders can only decide (i >= n) for n <= B(w, L, d) = 2^(m^(d^2))
//    with m = max(2, w, L). theorem43_bound evaluates B exactly as a
//    BigUint; log2_theorem43_bound evaluates log2(B) = m^(d^2) in
//    doubles; theorem43_min_states inverts it (smallest d whose bound
//    reaches n).
//
//  * Corollary 4.4 (closed form): deciding (i >= n) with width and
//    leaders at most m needs at least (log2 log2 n)^h / m states, for
//    any fixed h < 1/2 (the 1/m factor absorbs the corollary's
//    constant). This is the (log log n)^h shape quoted by E1/E10.
//
//  * Upper-bound shapes from Blondin-Esparza-Jaax: bej_loglog_states is
//    the O(log log n) leaderful shape, bej_log_states the O(log n)
//    leaderless binary shape, both with unit constant.
//
//  * Lemma 5.3 (Rackoff shape): a shortest covering sequence for a
//    target rho in a d-place net T has length at most
//    (||rho||_inf + ||T||_inf + 2)^(d^d). log2_rackoff_bound returns
//    log2 of that, i.e. d^d * log2(r + t + 2).
//
//  * Theorem 6.1 length bound: the witness words sigma and w to a
//    bottom configuration have length at most
//    b = (||T||_inf + ||rho||_inf + 2)^((d+1)^(d+1)); log2_theorem61_b
//    returns log2 b = (d+1)^(d+1) * log2(t + r + 2). Like the Rackoff
//    shape, the point of E4/E6 is that the measured quantities sit
//    astronomically below these towers, never above.

#ifndef PPSC_BOUNDS_FORMULAS_H
#define PPSC_BOUNDS_FORMULAS_H

#include <cstddef>
#include <cstdint>

#include "bounds/biguint.h"

namespace ppsc {
namespace bounds {

// (log2(log2 n))^h / m; 0 when log2_n <= 1.
double corollary44_lower_bound(double log2_n, double m, double h);

// Smallest d >= 1 with m^(d^2) >= log2 n, i.e. the exact inversion of
// Theorem 4.3 for width = leaders = m (m >= 2).
long long theorem43_min_states(double log2_n, double m);

// Exact Theorem 4.3 bound 2^(m^(d^2)), m = max(2, w, L). Throws
// std::overflow_error when the result would exceed ~2^(2^27) bits.
BigUint theorem43_bound(long long w, long long L, long long d);

// log2 of the same bound, i.e. m^(d^2), evaluated in doubles.
double log2_theorem43_bound(double w, double L, double d);

// Upper-bound shapes of [BEJ18]: log2(log2 n) (clamped at 0) and log2 n.
double bej_loglog_states(double log2_n);
double bej_log_states(double log2_n);

// Lemma 5.3: d^d * log2(r + t + 2), the log2 of the Rackoff-style cap
// on shortest covering sequences (r = ||rho||_inf, t = ||T||_inf).
double log2_rackoff_bound(double r, double t, double d);

// Lemma 5.4: log2 of the truncation threshold
// h = ||T||_inf * (1 + ||T||_inf)^(d^d), i.e.
// log2(t) + d^d * log2(1 + t); 0 when t == 0 (no transitions means
// every configuration is stabilized and any h works).
double log2_lemma54_h(std::uint64_t norm_t, std::size_t d);

// Theorem 6.1: (d+1)^(d+1) * log2(t + r + 2), the log2 of the witness
// length bound b.
double log2_theorem61_b(double t, double r, double d);

}  // namespace bounds
}  // namespace ppsc

#endif  // PPSC_BOUNDS_FORMULAS_H
