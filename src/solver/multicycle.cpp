#include "solver/multicycle.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "petri/euler.h"

namespace ppsc {
namespace solver {

std::optional<Multicycle> small_multicycle(
    const petri::ControlStateNet& cnet, const std::vector<std::uint64_t>& phi,
    const std::vector<bool>& q_mask, std::uint64_t k) {
  if (phi.size() != cnet.num_edges()) {
    throw std::invalid_argument("small_multicycle: phi size mismatch");
  }
  if (k == 0) {
    throw std::invalid_argument("small_multicycle: k must be >= 1");
  }
  (void)q_mask;  // informational: the underlying places are P \ Q

  // Circulation check: balanced flow at every control state.
  std::vector<std::int64_t> balance(cnet.num_controls(), 0);
  std::uint64_t gcd = 0;
  bool any = false;
  for (std::size_t e = 0; e < phi.size(); ++e) {
    if (phi[e] == 0) continue;
    any = true;
    if (phi[e] < k) return std::nullopt;  // hypothesis: k-fold repetition
    gcd = std::gcd(gcd, phi[e]);
    balance[cnet.edge(e).from] += static_cast<std::int64_t>(phi[e]);
    balance[cnet.edge(e).to] -= static_cast<std::int64_t>(phi[e]);
  }
  if (!any) return std::nullopt;
  for (std::int64_t b : balance) {
    if (b != 0) return std::nullopt;
  }

  Multicycle small;
  small.parikh.resize(phi.size(), 0);
  std::size_t anchor = 0;
  for (std::size_t e = 0; e < phi.size(); ++e) {
    if (phi[e] == 0) continue;
    small.parikh[e] = phi[e] / gcd;
    small.length += small.parikh[e];
    anchor = cnet.edge(e).from;
  }
  small.displacement = cnet.displacement(small.parikh);
  // Realize the replacement as one closed walk when the support is
  // connected (phi / gcd is still a circulation, so only connectivity
  // can fail).
  std::vector<std::pair<std::size_t, std::size_t>> endpoints;
  endpoints.reserve(cnet.num_edges());
  for (std::size_t e = 0; e < cnet.num_edges(); ++e) {
    endpoints.emplace_back(cnet.edge(e).from, cnet.edge(e).to);
  }
  small.walk = petri::euler_circuit(cnet.num_controls(), endpoints,
                                    small.parikh, anchor);
  return small;
}

double log2_lemma73_length_bound(const petri::ControlStateNet& cnet) {
  const double edges = static_cast<double>(cnet.num_edges());
  const double controls = static_cast<double>(cnet.num_controls());
  const double places = static_cast<double>(cnet.net().num_states());
  const double norm = static_cast<double>(cnet.net().norm_inf());
  return (edges + places) * std::log2(2.0 + controls + places * norm);
}

}  // namespace solver
}  // namespace ppsc
