#include "solver/diophantine.h"

#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "petri/config.h"

namespace ppsc {
namespace solver {

namespace {

// A x for nonnegative x, evaluated row by row.
std::vector<std::int64_t> residual(const HomogeneousSystem& system,
                                   const std::vector<std::uint64_t>& x) {
  std::vector<std::int64_t> value(system.rows.size(), 0);
  for (std::size_t r = 0; r < system.rows.size(); ++r) {
    std::int64_t sum = 0;
    for (std::size_t v = 0; v < system.num_vars; ++v) {
      sum += system.rows[r][v] * static_cast<std::int64_t>(x[v]);
    }
    value[r] = sum;
  }
  return value;
}

bool is_zero(const std::vector<std::int64_t>& value) {
  for (std::int64_t entry : value) {
    if (entry != 0) return false;
  }
  return true;
}

// Componentwise x >= y.
bool dominates(const std::vector<std::uint64_t>& x,
               const std::vector<std::uint64_t>& y) {
  for (std::size_t v = 0; v < x.size(); ++v) {
    if (x[v] < y[v]) return false;
  }
  return true;
}

struct VectorHash {
  std::size_t operator()(const std::vector<std::uint64_t>& x) const {
    // Same splitmix-mixed FNV fold the petri config hash uses: entries
    // are tiny integers and need spreading before folding.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t k : x) {
      h ^= petri::ConfigHash::mix(k);
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

HilbertBasisResult hilbert_basis(const HomogeneousSystem& system,
                                 const HilbertOptions& options) {
  for (const auto& row : system.rows) {
    if (row.size() != system.num_vars) {
      throw std::invalid_argument("hilbert_basis: row size != num_vars");
    }
  }
  obs::ScopedTimer timer("solver.hilbert");
  obs::ScopedSpan span("solver.hilbert", "solver");

  HilbertBasisResult result;
  std::uint64_t pruned = 0;
  // Precomputed column images A e_i, for the descent criterion.
  std::vector<std::vector<std::int64_t>> columns(system.num_vars);
  for (std::size_t v = 0; v < system.num_vars; ++v) {
    std::vector<std::uint64_t> unit(system.num_vars, 0);
    unit[v] = 1;
    columns[v] = residual(system, unit);
  }

  std::deque<std::vector<std::uint64_t>> frontier;
  std::unordered_set<std::vector<std::uint64_t>, VectorHash> seen;
  for (std::size_t v = 0; v < system.num_vars; ++v) {
    std::vector<std::uint64_t> unit(system.num_vars, 0);
    unit[v] = 1;
    seen.insert(unit);
    frontier.push_back(std::move(unit));
  }

  bool capped = false;
  while (!frontier.empty()) {
    if (result.nodes >= options.max_nodes) {
      capped = true;
      break;
    }
    ++result.nodes;
    const std::vector<std::uint64_t> current = std::move(frontier.front());
    frontier.pop_front();

    // Anything dominating a known solution is non-minimal (solutions
    // found after `current` was enqueued included).
    bool covered = false;
    for (const auto& element : result.basis) {
      if (dominates(current, element)) {
        covered = true;
        break;
      }
    }
    if (covered) {
      ++pruned;
      continue;
    }

    const std::vector<std::int64_t> value = residual(system, current);
    if (is_zero(value)) {
      result.basis.push_back(current);
      continue;
    }

    // Contejean-Devie descent: grow only in directions whose column
    // strictly reduces <A t, A t> -- complete, and terminating by
    // Dickson's lemma plus the domination pruning above.
    for (std::size_t v = 0; v < system.num_vars; ++v) {
      std::int64_t dot = 0;
      for (std::size_t r = 0; r < system.rows.size(); ++r) {
        dot += value[r] * columns[v][r];
      }
      if (dot >= 0) continue;
      std::vector<std::uint64_t> next = current;
      next[v] += 1;
      if (norm_l1(next) > options.max_norm) {
        capped = true;
        continue;
      }
      bool next_covered = false;
      for (const auto& element : result.basis) {
        if (dominates(next, element)) {
          next_covered = true;
          break;
        }
      }
      if (next_covered) {
        ++pruned;
        continue;
      }
      if (seen.insert(next).second) frontier.push_back(std::move(next));
    }
  }
  result.complete = !capped;

  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  if (registry.enabled()) {
    registry.add("solver.hilbert.nodes", result.nodes);
    registry.add("solver.hilbert.basis", result.basis.size());
    registry.add("solver.hilbert.pruned", pruned);
    if (capped) registry.add("solver.hilbert.incomplete", 1);
  }
  return result;
}

std::uint64_t norm_l1(const std::vector<std::uint64_t>& x) {
  std::uint64_t total = 0;
  for (std::uint64_t entry : x) total += entry;
  return total;
}

double log2_pottier_bound(const HomogeneousSystem& system) {
  std::uint64_t sum = 0;
  for (const auto& row : system.rows) {
    std::uint64_t norm = 0;
    for (std::int64_t coefficient : row) {
      const std::uint64_t magnitude = static_cast<std::uint64_t>(
          coefficient < 0 ? -coefficient : coefficient);
      if (magnitude > norm) norm = magnitude;
    }
    sum += norm;
  }
  return static_cast<double>(system.num_vars) *
         std::log2(2.0 + static_cast<double>(sum));
}

}  // namespace solver
}  // namespace ppsc
