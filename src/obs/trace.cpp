#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <type_traits>

#include "obs/json.h"

namespace ppsc {
namespace obs {

void TraceEvent::add_arg(const char* key, std::uint64_t value) {
  if (num_args >= kMaxArgs) return;
  args[num_args].key = key;
  args[num_args].value = value;
  ++num_args;
}

// Events cross the ring as relaxed/release atomic words, so they must
// be bit-copyable into a word buffer.
static_assert(std::is_trivially_copyable<TraceEvent>::value,
              "TraceEvent is memcpy'd through the ring slots");

// Single-producer seqlock ring. Each slot is an atomic sequence word
// plus the event payload spread over atomic words; for the event with
// global index i the writer publishes
//
//   seq: 2i+1 (relaxed)  ->  payload words (release)  ->  seq: 2i+2
//   (release)            ->  head: i+1 (release)
//
// The odd store cannot be overtaken by the payload stores (they are
// release, so they cannot move above a prior store in their own
// thread's order as observed through the final release/acquire pair),
// and the even store cannot move above them. A collector reads seq
// (acquire), the payload words (acquire, so the re-read below cannot
// be hoisted above them), then re-reads seq (relaxed): the slot holds
// a consistent event #i iff both reads returned 2i+2. Anything else
// means mid-write or overwritten-by-wrap and the slot is skipped.
// Every access is atomic, so concurrent collect-vs-append is
// data-race-free; completeness still requires quiescent writers (the
// documented export contract). Overwritten slots (head past capacity)
// are the dropped window.
struct TraceRegistry::Ring {
  // Payload words per slot.
  static constexpr std::size_t kSlotWords =
      (sizeof(TraceEvent) + sizeof(std::uint64_t) - 1) /
      sizeof(std::uint64_t);

  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kSlotWords] = {};
  };

  explicit Ring(std::uint32_t ring_id)
      : id(ring_id), slots(new Slot[kRingCapacity]) {}

  // Publishes `event` as global index `index` (the pre-increment head
  // value). Single producer: only the owning thread calls this.
  void publish(std::uint64_t index, const TraceEvent& event) {
    std::uint64_t packed[kSlotWords] = {};
    std::memcpy(packed, &event, sizeof(TraceEvent));
    Slot& slot = slots[index % kRingCapacity];
    slot.seq.store(2 * index + 1, std::memory_order_relaxed);
    for (std::size_t w = 0; w < kSlotWords; ++w) {
      slot.words[w].store(packed[w], std::memory_order_release);
    }
    slot.seq.store(2 * index + 2, std::memory_order_release);
  }

  // Reads the event with global index `index`; returns false when the
  // slot is mid-write or no longer holds that event.
  bool read(std::uint64_t index, TraceEvent* out) const {
    const Slot& slot = slots[index % kRingCapacity];
    const std::uint64_t want = 2 * index + 2;
    if (slot.seq.load(std::memory_order_acquire) != want) return false;
    std::uint64_t packed[kSlotWords];
    for (std::size_t w = 0; w < kSlotWords; ++w) {
      packed[w] = slot.words[w].load(std::memory_order_acquire);
    }
    if (slot.seq.load(std::memory_order_relaxed) != want) return false;
    std::memcpy(out, packed, sizeof(TraceEvent));
    return true;
  }

  std::uint32_t id;
  std::atomic<std::uint64_t> head{0};
  std::unique_ptr<Slot[]> slots;
};

#if PPSC_OBS_ENABLED
namespace {

bool env_truthy(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
         std::strcmp(env, "on") == 0;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace
#endif  // PPSC_OBS_ENABLED

TraceRegistry::TraceRegistry() {
#if PPSC_OBS_ENABLED
  // Asking for a trace file implies tracing; PPSC_OBS_TRACE alone
  // arms the spans for in-process consumers (tests, future tooling).
  enabled_.store(env_truthy("PPSC_OBS_TRACE") || trace_json_env() != nullptr,
                 std::memory_order_relaxed);
#endif
}

TraceRegistry& TraceRegistry::global() {
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

#if PPSC_OBS_ENABLED

TraceRegistry::Ring& TraceRegistry::local_ring() {
  // One ring per thread, owned by the registry and kept alive after
  // the thread exits so its events survive into the export. The
  // registry is a leaked singleton, so the cached pointer cannot
  // dangle.
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(
        std::make_unique<Ring>(static_cast<std::uint32_t>(rings_.size())));
    ring = rings_.back().get();
  }
  return *ring;
}

void TraceRegistry::append(TraceEvent event) {
  if (!enabled()) return;
  Ring& ring = local_ring();
  event.thread_id = ring.id;
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  ring.publish(head, event);
  ring.head.store(head + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRegistry::collect() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      const std::uint64_t kept = std::min<std::uint64_t>(head, kRingCapacity);
      TraceEvent event;
      for (std::uint64_t i = head - kept; i < head; ++i) {
        // read() fails exactly for slots the owning thread is writing
        // or has lapped since the head load; with quiescent writers it
        // always succeeds, so exports stay complete.
        if (ring->read(i, &event)) events.push_back(event);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
              if (a.t_start_ns != b.t_start_ns) {
                return a.t_start_ns < b.t_start_ns;
              }
              if (a.depth != b.depth) return a.depth < b.depth;
              return std::strcmp(a.name, b.name) < 0;
            });
  return events;
}

std::uint64_t TraceRegistry::dropped() const {
  std::uint64_t lost = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > kRingCapacity) lost += head - kRingCapacity;
  }
  return lost;
}

void TraceRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    ring->head.store(0, std::memory_order_release);
  }
}

#else  // !PPSC_OBS_ENABLED

void TraceRegistry::append(TraceEvent event) { (void)event; }

std::vector<TraceEvent> TraceRegistry::collect() const { return {}; }

std::uint64_t TraceRegistry::dropped() const { return 0; }

void TraceRegistry::reset() {}

#endif  // PPSC_OBS_ENABLED

std::string TraceRegistry::to_chrome_json() const {
  const std::vector<TraceEvent> events = collect();
  // Rebase to the earliest start so timestamps are small and the
  // output is deterministic for injected (fixed-clock) events.
  std::uint64_t base = 0;
  if (!events.empty()) {
    base = events.front().t_start_ns;
    for (const TraceEvent& e : events) base = std::min(base, e.t_start_ns);
  }
  // The trace-event format fixes ts/dur in microseconds; fractional
  // values carry the nanoseconds.
  const auto to_us = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1000.0;
  };
  JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) {
    json.begin_object();
    json.key("name").value(e.name);
    json.key("cat").value(e.category);
    json.key("ph").value("X");
    json.key("ts").value(to_us(e.t_start_ns - base));
    json.key("dur").value(to_us(e.t_end_ns - e.t_start_ns));
    json.key("pid").value(1);
    json.key("tid").value(static_cast<std::uint64_t>(e.thread_id));
    if (e.num_args > 0) {
      json.key("args").begin_object();
      for (std::uint32_t a = 0; a < e.num_args; ++a) {
        json.key(e.args[a].key).value(e.args[a].value);
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.key("displayTimeUnit").value("ns");
  json.end_object();
  return json.str();
}

bool TraceRegistry::write_chrome_json(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "obs::TraceRegistry: cannot open %s\n", path.c_str());
    return false;
  }
  const std::string json = to_chrome_json();
  std::fputs(json.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  return true;
}

#if PPSC_OBS_ENABLED

namespace {

// Nesting depth of the spans currently open on this thread.
thread_local std::uint32_t span_depth = 0;

}  // namespace

ScopedSpan::ScopedSpan(const char* name, const char* category) {
  if (!TraceRegistry::global().enabled()) return;
  armed_ = true;
  event_.name = name;
  event_.category = category;
  event_.depth = span_depth++;
  event_.t_start_ns = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  event_.t_end_ns = now_ns();
  --span_depth;
  TraceRegistry::global().append(event_);
}

#endif  // PPSC_OBS_ENABLED

const char* trace_json_env() {
  const char* env = std::getenv("PPSC_TRACE_JSON");
  return (env != nullptr && *env != '\0') ? env : nullptr;
}

bool write_trace_if_requested() {
  const char* path = trace_json_env();
  if (path == nullptr) return false;
  return TraceRegistry::global().write_chrome_json(path);
}

}  // namespace obs
}  // namespace ppsc
