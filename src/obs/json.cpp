#include "obs/json.h"

#include <cstdio>

namespace ppsc {
namespace obs {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::optional<std::string> json_unescape(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= escaped.size()) return std::nullopt;
    switch (escaped[i]) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case '/':
        out += '/';
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (i + 4 >= escaped.size()) return std::nullopt;
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = escaped[++i];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return std::nullopt;
          }
        }
        // The escaper only emits \u00XX for control bytes; decoding
        // stays within one byte and rejects anything wider.
        if (code > 0xff) return std::nullopt;
        out += static_cast<char>(code);
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return out;
}

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  has_element_.pop_back();
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  has_element_.pop_back();
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  separator();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  separator();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separator();
  out_ += std::to_string(number);
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separator();
  out_ += std::to_string(number);
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(double number) {
  separator();
  if (number != number || number > 1.7e308 || number < -1.7e308) {
    out_ += '0';  // NaN / inf have no JSON spelling
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", number);
    out_ += buffer;
  }
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separator();
  out_ += flag ? "true" : "false";
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

}  // namespace obs
}  // namespace ppsc
