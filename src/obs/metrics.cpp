#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json.h"

namespace ppsc {
namespace obs {

std::size_t Histogram::bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  std::size_t bit = 0;
  while (value >>= 1) ++bit;
  return std::min<std::size_t>(bit + 1, kBuckets - 1);
}

void Histogram::record(std::uint64_t value) {
  ++count;
  sum += value;
  max = std::max(max, value);
  ++buckets[bucket_of(value)];
}

void Histogram::merge(const Histogram& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

double Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t before = cum;
    cum += buckets[b];
    if (static_cast<double>(cum) < rank) continue;
    if (b == 0) return 0.0;  // bucket 0 holds exactly the value 0
    const double lower = static_cast<double>(1ull << (b - 1));
    // Bucket 63 is open-ended; max is its only honest upper edge. For
    // every bucket the clamp keeps the estimate at or below a value
    // that was actually recorded.
    double upper = b >= kBuckets - 1
                       ? static_cast<double>(max)
                       : static_cast<double>(1ull << b);
    upper = std::min(upper, static_cast<double>(max));
    // A nonempty bucket contains a value >= lower, so max >= lower and
    // the clamped edges can at worst coincide.
    if (upper <= lower) return lower;
    const double fraction = std::min(
        std::max((rank - static_cast<double>(before)) /
                     static_cast<double>(buckets[b]),
                 0.0),
        1.0);
    return lower + (upper - lower) * fraction;
  }
  return static_cast<double>(max);
}

std::string MetricSnapshot::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& entry : counters) {
    json.key(entry.first).value(entry.second);
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& entry : histograms) {
    const Histogram& h = entry.second;
    json.key(entry.first).begin_object();
    json.key("count").value(h.count);
    json.key("sum").value(h.sum);
    json.key("max").value(h.max);
    json.key("p50").value(h.quantile(0.5));
    json.key("p90").value(h.quantile(0.9));
    json.key("p99").value(h.quantile(0.99));
    json.key("buckets").begin_array();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      const std::uint64_t lower = b == 0 ? 0 : (1ull << (b - 1));
      json.begin_array().value(lower).value(h.buckets[b]).end_array();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.str();
}

namespace {

#if PPSC_OBS_ENABLED
bool env_enables_obs() {
  const char* env = std::getenv("PPSC_OBS");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
         std::strcmp(env, "on") == 0;
}
#endif

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

MetricRegistry::MetricRegistry() {
#if PPSC_OBS_ENABLED
  // PPSC_OBS_DUMP implies observation: a snapshot of a disabled
  // registry would always be empty, so asking for the dump enables
  // collection too. The atexit handler runs before static destruction
  // of anything registered later, and the registry itself is leaked,
  // so the final snapshot is safe to take there.
  const char* dump = std::getenv("PPSC_OBS_DUMP");
  const bool dump_requested = dump != nullptr && *dump != '\0';
  enabled_.store(env_enables_obs() || dump_requested,
                 std::memory_order_relaxed);
  if (dump_requested) {
    std::atexit([] { write_snapshot_if_requested(); });
  }
#endif
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

#if PPSC_OBS_ENABLED

MetricRegistry::Sheet& MetricRegistry::local_sheet() {
  // One sheet per thread, owned by the registry and kept alive after
  // the thread exits so its contributions survive into snapshots (the
  // "merge at join" happens lazily, at snapshot time). The registry is
  // a leaked singleton, so the cached pointer can never dangle.
  thread_local Sheet* sheet = nullptr;
  if (sheet == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    sheets_.push_back(std::make_unique<Sheet>());
    sheet = sheets_.back().get();
  }
  return *sheet;
}

void MetricRegistry::add(const char* name, std::uint64_t delta) {
  if (!enabled()) return;
  Sheet& sheet = local_sheet();
  std::lock_guard<std::mutex> lock(sheet.mu);
  sheet.counters[name] += delta;
}

void MetricRegistry::record(const char* name, std::uint64_t value) {
  if (!enabled()) return;
  Sheet& sheet = local_sheet();
  std::lock_guard<std::mutex> lock(sheet.mu);
  sheet.histograms[name].record(value);
}

MetricSnapshot MetricRegistry::snapshot() const {
  MetricSnapshot merged;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sheet : sheets_) {
    std::lock_guard<std::mutex> sheet_lock(sheet->mu);
    for (const auto& entry : sheet->counters) {
      merged.counters[entry.first] += entry.second;
    }
    for (const auto& entry : sheet->histograms) {
      merged.histograms[entry.first].merge(entry.second);
    }
  }
  return merged;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sheet : sheets_) {
    std::lock_guard<std::mutex> sheet_lock(sheet->mu);
    sheet->counters.clear();
    sheet->histograms.clear();
  }
}

#else  // !PPSC_OBS_ENABLED

void MetricRegistry::add(const char* name, std::uint64_t delta) {
  (void)name;
  (void)delta;
}

void MetricRegistry::record(const char* name, std::uint64_t value) {
  (void)name;
  (void)value;
}

MetricSnapshot MetricRegistry::snapshot() const { return {}; }

void MetricRegistry::reset() {}

#endif  // PPSC_OBS_ENABLED

bool write_snapshot_if_requested() {
  const char* path = std::getenv("PPSC_OBS_DUMP");
  if (path == nullptr || *path == '\0') return false;
  const std::string json = MetricRegistry::global().snapshot().to_json();
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "obs::write_snapshot_if_requested: cannot open %s\n",
                 path);
    return false;
  }
  std::fputs(json.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  return true;
}

ScopedTimer::ScopedTimer(const char* name) : name_(name) {
  if (MetricRegistry::global().enabled()) {
    armed_ = true;
    start_ns_ = now_ns();
  }
}

ScopedTimer::~ScopedTimer() {
  if (!armed_) return;
  MetricRegistry& registry = MetricRegistry::global();
  std::string wall = std::string(name_) + ".wall_ns";
  std::string calls = std::string(name_) + ".calls";
  registry.add(wall.c_str(), now_ns() - start_ns_);
  registry.add(calls.c_str(), 1);
}

}  // namespace obs
}  // namespace ppsc
