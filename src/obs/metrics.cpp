#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/json.h"

namespace ppsc {
namespace obs {

std::size_t Histogram::bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  std::size_t bit = 0;
  while (value >>= 1) ++bit;
  return std::min<std::size_t>(bit + 1, kBuckets - 1);
}

void Histogram::record(std::uint64_t value) {
  ++count;
  sum += value;
  max = std::max(max, value);
  ++buckets[bucket_of(value)];
}

void Histogram::merge(const Histogram& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

std::string MetricSnapshot::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& entry : counters) {
    json.key(entry.first).value(entry.second);
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& entry : histograms) {
    const Histogram& h = entry.second;
    json.key(entry.first).begin_object();
    json.key("count").value(h.count);
    json.key("sum").value(h.sum);
    json.key("max").value(h.max);
    json.key("buckets").begin_array();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      const std::uint64_t lower = b == 0 ? 0 : (1ull << (b - 1));
      json.begin_array().value(lower).value(h.buckets[b]).end_array();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.str();
}

namespace {

#if PPSC_OBS_ENABLED
bool env_enables_obs() {
  const char* env = std::getenv("PPSC_OBS");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
         std::strcmp(env, "on") == 0;
}
#endif

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

MetricRegistry::MetricRegistry() {
#if PPSC_OBS_ENABLED
  enabled_.store(env_enables_obs(), std::memory_order_relaxed);
#endif
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

#if PPSC_OBS_ENABLED

MetricRegistry::Sheet& MetricRegistry::local_sheet() {
  // One sheet per thread, owned by the registry and kept alive after
  // the thread exits so its contributions survive into snapshots (the
  // "merge at join" happens lazily, at snapshot time). The registry is
  // a leaked singleton, so the cached pointer can never dangle.
  thread_local Sheet* sheet = nullptr;
  if (sheet == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    sheets_.push_back(std::make_unique<Sheet>());
    sheet = sheets_.back().get();
  }
  return *sheet;
}

void MetricRegistry::add(const char* name, std::uint64_t delta) {
  if (!enabled()) return;
  Sheet& sheet = local_sheet();
  std::lock_guard<std::mutex> lock(sheet.mu);
  sheet.counters[name] += delta;
}

void MetricRegistry::record(const char* name, std::uint64_t value) {
  if (!enabled()) return;
  Sheet& sheet = local_sheet();
  std::lock_guard<std::mutex> lock(sheet.mu);
  sheet.histograms[name].record(value);
}

MetricSnapshot MetricRegistry::snapshot() const {
  MetricSnapshot merged;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sheet : sheets_) {
    std::lock_guard<std::mutex> sheet_lock(sheet->mu);
    for (const auto& entry : sheet->counters) {
      merged.counters[entry.first] += entry.second;
    }
    for (const auto& entry : sheet->histograms) {
      merged.histograms[entry.first].merge(entry.second);
    }
  }
  return merged;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sheet : sheets_) {
    std::lock_guard<std::mutex> sheet_lock(sheet->mu);
    sheet->counters.clear();
    sheet->histograms.clear();
  }
}

#else  // !PPSC_OBS_ENABLED

void MetricRegistry::add(const char* name, std::uint64_t delta) {
  (void)name;
  (void)delta;
}

void MetricRegistry::record(const char* name, std::uint64_t value) {
  (void)name;
  (void)value;
}

MetricSnapshot MetricRegistry::snapshot() const { return {}; }

void MetricRegistry::reset() {}

#endif  // PPSC_OBS_ENABLED

ScopedTimer::ScopedTimer(const char* name) : name_(name) {
  if (MetricRegistry::global().enabled()) {
    armed_ = true;
    start_ns_ = now_ns();
  }
}

ScopedTimer::~ScopedTimer() {
  if (!armed_) return;
  MetricRegistry& registry = MetricRegistry::global();
  std::string wall = std::string(name_) + ".wall_ns";
  std::string calls = std::string(name_) + ".calls";
  registry.add(wall.c_str(), now_ns() - start_ns_);
  registry.add(calls.c_str(), 1);
}

}  // namespace obs
}  // namespace ppsc
