#include "verify/stabilized.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "petri/coverability.h"

namespace ppsc {
namespace verify {

namespace {

void check_mask(const petri::PetriNet& net, const std::vector<bool>& f_mask) {
  if (f_mask.size() != net.num_states()) {
    throw std::invalid_argument(
        "verify/stabilized: f_mask size does not match net");
  }
}

petri::Config truncate(const petri::Config& config, std::uint64_t h) {
  petri::Config truncated = config;
  const petri::Count cap = static_cast<petri::Count>(h);
  for (std::size_t q = 0; q < truncated.size(); ++q) {
    if (truncated[q] > cap) truncated[q] = cap;
  }
  return truncated;
}

}  // namespace

bool StabilizationCertificate::stabilized(const petri::Config& rho) const {
  for (const auto& basis : bases) {
    for (const petri::Config& element : basis) {
      if (rho.covers(element)) return false;
    }
  }
  return true;
}

StabilizationCertificate stabilization_certificate(
    const petri::PetriNet& net, const std::vector<bool>& f_mask,
    std::size_t max_basis) {
  check_mask(net, f_mask);
  obs::ScopedTimer timer("verify.stabilized");
  obs::ScopedSpan span("verify.stabilized", "verify");

  StabilizationCertificate certificate;
  certificate.num_states = net.num_states();
  std::uint64_t basis_total = 0;
  for (std::size_t q = 0; q < net.num_states(); ++q) {
    if (f_mask[q]) continue;
    certificate.bad_states.push_back(q);
    certificate.bases.push_back(petri::backward_basis(
        net, petri::Config::unit(net.num_states(), q), max_basis));
    basis_total += certificate.bases.back().size();
  }

  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  if (registry.enabled()) {
    registry.add("verify.stabilized.queries", certificate.bad_states.size());
    registry.add("verify.stabilized.basis_total", basis_total);
  }
  return certificate;
}

bool is_stabilized(const petri::PetriNet& net, const petri::Config& rho,
                   const std::vector<bool>& f_mask) {
  return stabilization_certificate(net, f_mask).stabilized(rho);
}

std::optional<std::uint64_t> minimal_effective_h(
    const petri::PetriNet& net, const std::vector<petri::Config>& seeds,
    const std::vector<bool>& f_mask, std::uint64_t limit,
    std::uint64_t probe_height) {
  check_mask(net, f_mask);
  const StabilizationCertificate certificate =
      stabilization_certificate(net, f_mask);
  obs::ScopedSpan span("verify.stabilized.search", "verify");

  const std::size_t d = net.num_states();
  std::uint64_t probes = 0;
  std::optional<std::uint64_t> found;
  for (std::uint64_t h = 1; h <= limit && !found; ++h) {
    const std::uint64_t side = h + probe_height + 1;
    double box = 1.0;
    for (std::size_t q = 0; q < d; ++q) box *= static_cast<double>(side);
    if (box > static_cast<double>(1u << 24)) {
      throw std::invalid_argument(
          "minimal_effective_h: probe box exceeds 2^24 configurations");
    }

    const auto effective_on = [&](const petri::Config& sigma) {
      ++probes;
      return certificate.stabilized(sigma) ==
             certificate.stabilized(truncate(sigma, h));
    };

    bool effective = true;
    for (const petri::Config& seed : seeds) {
      if (!effective_on(seed)) {
        effective = false;
        break;
      }
    }
    // Odometer over the probe box [0, h + probe_height]^d.
    petri::Config sigma(d);
    while (effective) {
      if (!effective_on(sigma)) {
        effective = false;
        break;
      }
      std::size_t q = 0;
      while (q < d &&
             sigma[q] == static_cast<petri::Count>(h + probe_height)) {
        sigma[q] = 0;
        ++q;
      }
      if (q == d) break;
      ++sigma[q];
    }
    if (effective) found = h;
  }

  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  if (registry.enabled()) {
    registry.add("verify.stabilized.probes", probes);
  }
  return found;
}

}  // namespace verify
}  // namespace ppsc
