#include "verify/wellspec.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "petri/reachability.h"

namespace ppsc {
namespace verify {

namespace {

using core::Config;
using core::Count;

}  // namespace

WellSpecVerdict classify_input(const core::Protocol& protocol,
                               const std::vector<core::Count>& input,
                               const WellSpecOptions& options) {
  obs::ScopedTimer timer("verify.wellspec");
  obs::ScopedSpan span("verify.wellspec", "verify");
  WellSpecVerdict verdict;
  verdict.input = input;

  const Config initial = protocol.initial_config(input);
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  if (registry.enabled()) registry.add("verify.wellspec.inputs", 1);
  if (core::Protocol::population(initial) == 0) {
    // Empty population: computes 0 by convention (see wellspec.h).
    verdict.value = false;
    verdict.reachable_configs = 1;
    return verdict;
  }

  petri::ExploreLimits limits;
  limits.max_nodes = options.max_configs;
  const petri::ReachabilityGraph graph = [&] {
    obs::ScopedSpan explore_span("verify.wellspec.explore", "verify");
    return petri::explore(petri::PetriNet(protocol.net()),
                          {petri::Config(initial)}, limits);
  }();
  if (graph.truncated) {
    throw std::runtime_error(
        "verify::classify_input: reachability graph exceeds " +
        std::to_string(options.max_configs) + " configurations");
  }
  verdict.reachable_configs = graph.nodes.size();
  if (registry.enabled()) {
    registry.add("verify.wellspec.reachable_configs", graph.nodes.size());
  }

  const petri::SccDecomposition scc = petri::scc_decompose(graph);
  obs::ScopedSpan consensus_span("verify.wellspec.consensus", "verify");
  // Per-SCC consensus: -1 unseen, 0/1 unanimous so far, 2 mixed.
  std::vector<int> consensus(scc.count, -1);
  for (std::size_t u = 0; u < graph.nodes.size(); ++u) {
    const std::size_t component = scc.component[u];
    if (!scc.bottom[component]) continue;
    const Config& config = graph.nodes[u].raw();
    for (std::size_t q = 0; q < config.size(); ++q) {
      if (config[q] == 0) continue;
      const int output = protocol.output(q) ? 1 : 0;
      if (consensus[component] == -1) {
        consensus[component] = output;
      } else if (consensus[component] != output) {
        consensus[component] = 2;
      }
    }
  }
  int extracted = -1;
  for (std::size_t component = 0; component < scc.count; ++component) {
    if (consensus[component] == -1) continue;  // not a bottom SCC
    if (consensus[component] == 2) {
      verdict.detail = "a bottom SCC mixes outputs (no consensus reached)";
      if (registry.enabled()) registry.add("verify.wellspec.unresolved", 1);
      return verdict;
    }
    if (extracted == -1) {
      extracted = consensus[component];
    } else if (extracted != consensus[component]) {
      verdict.detail =
          "bottom SCCs disagree (consensus depends on the schedule)";
      if (registry.enabled()) registry.add("verify.wellspec.unresolved", 1);
      return verdict;
    }
  }
  verdict.value = extracted == 1;
  return verdict;
}

WellSpecResult check_well_specification_up_to(const core::Protocol& protocol,
                                              core::Count bound,
                                              const WellSpecOptions& options) {
  if (bound < 0) {
    throw std::invalid_argument(
        "check_well_specification_up_to: bound must be >= 0");
  }
  WellSpecResult result;
  const std::size_t arity = protocol.input_arity();
  std::vector<core::Count> input(arity, 0);
  while (true) {
    result.verdicts.push_back(classify_input(protocol, input, options));
    // Odometer over [0, bound]^arity, least-significant dimension first
    // (the same enumeration order as verify::check_up_to).
    std::size_t dim = 0;
    while (dim < arity && input[dim] == bound) {
      input[dim] = 0;
      ++dim;
    }
    if (dim == arity) break;
    ++input[dim];
  }
  return result;
}

}  // namespace verify
}  // namespace ppsc
