#include "verify/stable.h"

#include <cstdint>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "petri/reachability.h"

namespace ppsc {
namespace verify {

namespace {

using core::Config;
using core::Count;

std::string render_config(const core::Protocol& protocol,
                          const Config& config) {
  std::string out = "{";
  bool first = true;
  for (std::size_t q = 0; q < config.size(); ++q) {
    if (config[q] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += protocol.state_name(q) + ":" + std::to_string(config[q]);
  }
  return out + "}";
}

}  // namespace

Verdict check_input(const core::Protocol& protocol,
                    const core::Predicate& predicate,
                    const std::vector<core::Count>& input,
                    const CheckOptions& options) {
  obs::ScopedTimer timer("verify");
  obs::ScopedSpan span("verify", "verify");
  Verdict verdict;
  verdict.input = input;

  const Config initial = protocol.initial_config(input);
  if (core::Protocol::population(initial) == 0) {
    verdict.ok = true;
    verdict.reachable_configs = 1;
    verdict.detail = "empty population (vacuous)";
    return verdict;
  }
  const bool expected = predicate(input);

  // The (finite, by conservation) reachability graph and its SCCs come
  // from the shared petri engines; the limit check mirrors explore's
  // truncation boundary, so a graph of exactly max_configs nodes is
  // still accepted and nothing is recorded past the cap.
  petri::ExploreLimits limits;
  limits.max_nodes = options.max_configs;
  const petri::ReachabilityGraph graph = [&] {
    obs::ScopedSpan explore_span("verify.explore", "verify");
    return petri::explore(petri::PetriNet(protocol.net()),
                          {petri::Config(initial)}, limits);
  }();
  if (graph.truncated) {
    throw std::runtime_error(
        "verify::check_input: reachability graph exceeds " +
        std::to_string(options.max_configs) + " configurations");
  }
  verdict.reachable_configs = graph.nodes.size();

  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  if (registry.enabled()) {
    registry.add("verify.inputs", 1);
    registry.add("verify.reachable_configs", graph.nodes.size());
  }
  std::uint64_t bottom_configs = 0;
  const petri::SccDecomposition scc = [&graph] {
    obs::ScopedSpan scc_span("verify.scc", "verify");
    return petri::scc_decompose(graph);
  }();
  obs::ScopedSpan unanimity_span("verify.unanimity", "verify");
  for (std::size_t u = 0; u < graph.nodes.size(); ++u) {
    if (!scc.bottom[scc.component[u]]) continue;
    ++bottom_configs;
    const Config& config = graph.nodes[u].raw();
    for (std::size_t q = 0; q < config.size(); ++q) {
      if (config[q] > 0 && protocol.output(q) != expected) {
        verdict.ok = false;
        verdict.detail = "config " + render_config(protocol, config) +
                         " lies in a bottom SCC but state '" +
                         protocol.state_name(q) + "' outputs " +
                         (expected ? "0" : "1") + " (expected consensus " +
                         (expected ? "1" : "0") + ")";
        registry.add("verify.bottom_configs", bottom_configs);
        registry.add("verify.failures", 1);
        return verdict;
      }
    }
  }
  verdict.ok = true;
  registry.add("verify.bottom_configs", bottom_configs);
  return verdict;
}

CheckResult check_up_to(const core::Protocol& protocol,
                        const core::Predicate& predicate, core::Count bound,
                        const CheckOptions& options) {
  if (bound < 0) {
    throw std::invalid_argument("check_up_to: bound must be >= 0");
  }
  CheckResult result;
  const std::size_t arity = protocol.input_arity();
  std::vector<core::Count> input(arity, 0);
  while (true) {
    result.verdicts.push_back(check_input(protocol, predicate, input, options));
    // Odometer over [0, bound]^arity.
    std::size_t dim = 0;
    while (dim < arity && input[dim] == bound) {
      input[dim] = 0;
      ++dim;
    }
    if (dim == arity) break;
    ++input[dim];
  }
  return result;
}

}  // namespace verify
}  // namespace ppsc
