#include "verify/stable.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace ppsc {
namespace verify {

namespace {

using core::Config;
using core::Count;

struct ConfigHash {
  std::size_t operator()(const Config& config) const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (Count k : config) {
      h ^= static_cast<std::uint64_t>(k);
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

std::string render_config(const core::Protocol& protocol,
                          const Config& config) {
  std::string out = "{";
  bool first = true;
  for (std::size_t q = 0; q < config.size(); ++q) {
    if (config[q] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += protocol.state_name(q) + ":" + std::to_string(config[q]);
  }
  return out + "}";
}

// Explicit-stack Tarjan; returns the SCC id of every node. SCC ids are
// assigned in reverse topological order (a bottom SCC gets a lower id
// than its predecessors), but we do not rely on that -- bottomness is
// detected from cross-SCC edges afterwards.
std::vector<std::size_t> tarjan_scc(
    const std::vector<std::vector<std::size_t>>& adjacency,
    std::size_t* num_sccs) {
  const std::size_t n = adjacency.size();
  const std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kNone);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<std::size_t> scc(n, kNone);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;
  std::size_t next_scc = 0;

  struct Frame {
    std::size_t node;
    std::size_t edge;
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kNone) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::size_t u = frame.node;
      if (frame.edge < adjacency[u].size()) {
        const std::size_t v = adjacency[u][frame.edge++];
        if (index[v] == kNone) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          call_stack.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc[w] = next_scc;
            if (w == u) break;
          }
          ++next_scc;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const std::size_t parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }
  *num_sccs = next_scc;
  return scc;
}

}  // namespace

Verdict check_input(const core::Protocol& protocol,
                    const core::Predicate& predicate,
                    const std::vector<core::Count>& input,
                    const CheckOptions& options) {
  Verdict verdict;
  verdict.input = input;

  const Config initial = protocol.initial_config(input);
  if (core::Protocol::population(initial) == 0) {
    verdict.ok = true;
    verdict.reachable_configs = 1;
    verdict.detail = "empty population (vacuous)";
    return verdict;
  }
  const bool expected = predicate(input);

  // Breadth-first exploration of the (finite) reachability graph.
  std::vector<Config> configs;
  std::unordered_map<Config, std::size_t, ConfigHash> ids;
  std::vector<std::vector<std::size_t>> adjacency;
  configs.push_back(initial);
  ids.emplace(initial, 0);
  adjacency.emplace_back();
  for (std::size_t head = 0; head < configs.size(); ++head) {
    const Config current = configs[head];
    for (const core::Transition& t : protocol.net().transitions()) {
      if (!protocol.net().enabled(t, current)) continue;
      Config next = protocol.net().fire(t, current);
      auto inserted = ids.emplace(next, configs.size());
      if (inserted.second) {
        if (configs.size() >= options.max_configs) {
          throw std::runtime_error(
              "verify::check_input: reachability graph exceeds " +
              std::to_string(options.max_configs) + " configurations");
        }
        configs.push_back(std::move(next));
        adjacency.emplace_back();
      }
      adjacency[head].push_back(inserted.first->second);
    }
  }
  verdict.reachable_configs = configs.size();

  std::size_t num_sccs = 0;
  const std::vector<std::size_t> scc = tarjan_scc(adjacency, &num_sccs);
  std::vector<bool> bottom(num_sccs, true);
  for (std::size_t u = 0; u < adjacency.size(); ++u) {
    for (std::size_t v : adjacency[u]) {
      if (scc[u] != scc[v]) bottom[scc[u]] = false;
    }
  }

  for (std::size_t u = 0; u < configs.size(); ++u) {
    if (!bottom[scc[u]]) continue;
    for (std::size_t q = 0; q < configs[u].size(); ++q) {
      if (configs[u][q] > 0 && protocol.output(q) != expected) {
        verdict.ok = false;
        verdict.detail = "config " + render_config(protocol, configs[u]) +
                         " lies in a bottom SCC but state '" +
                         protocol.state_name(q) + "' outputs " +
                         (expected ? "0" : "1") + " (expected consensus " +
                         (expected ? "1" : "0") + ")";
        return verdict;
      }
    }
  }
  verdict.ok = true;
  return verdict;
}

CheckResult check_up_to(const core::Protocol& protocol,
                        const core::Predicate& predicate, core::Count bound,
                        const CheckOptions& options) {
  if (bound < 0) {
    throw std::invalid_argument("check_up_to: bound must be >= 0");
  }
  CheckResult result;
  const std::size_t arity = protocol.input_arity();
  std::vector<core::Count> input(arity, 0);
  while (true) {
    result.verdicts.push_back(check_input(protocol, predicate, input, options));
    // Odometer over [0, bound]^arity.
    std::size_t dim = 0;
    while (dim < arity && input[dim] == bound) {
      input[dim] = 0;
      ++dim;
    }
    if (dim == arity) break;
    ++input[dim];
  }
  return result;
}

}  // namespace verify
}  // namespace ppsc
