#include "core/constructions.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ppsc {
namespace core {

namespace {

bool is_power_of_two(Count n) { return n > 0 && (n & (n - 1)) == 0; }

std::string count_str(Count n) { return std::to_string(n); }

}  // namespace

Predicate counting_predicate(Count n) {
  Predicate p;
  p.name = "x >= " + count_str(n);
  p.arity = 1;
  p.fn = [n](const std::vector<Count>& x) { return x[0] >= n; };
  return p;
}

ConstructedProtocol example_4_1(Count n) {
  if (n < 1) throw std::invalid_argument("example_4_1: n must be >= 1");
  ProtocolBuilder b;
  const std::size_t A = b.add_state("A", false);
  const std::size_t B = b.add_state("B", true);
  b.add_input(A);
  // t_n: n input agents fire simultaneously -- the single wide
  // interaction that makes the preorder's width exactly n.
  b.add_rule("t" + count_str(n), {{A, n}}, {{B, n}});
  // t_k, k < n: one B recruits k A's at once. Redundant given t_1 but
  // part of the example's transition family (n transitions total).
  for (Count k = 1; k < n; ++k) {
    b.add_rule("t" + count_str(k), {{B, 1}, {A, k}}, {{B, k + 1}});
  }
  return {"example 4.1 (width n)", b.build(), counting_predicate(n)};
}

ConstructedProtocol example_4_2(Count n) {
  if (n < 1) throw std::invalid_argument("example_4_2: n must be >= 1");
  ProtocolBuilder b;
  const std::size_t X = b.add_state("X", true);    // unconsumed input
  const std::size_t C0 = b.add_state("C0", false);  // consumed, opinion 0
  const std::size_t C1 = b.add_state("C1", true);   // consumed, opinion 1
  const std::size_t H = b.add_state("H", false);    // hungry leader
  const std::size_t F = b.add_state("F", true);     // fed leader
  const std::size_t F0 = b.add_state("F0", false);  // fed leader, vetoed
  b.add_input(X);
  b.add_leaders(H, n);
  b.add_pair_rule("eat", H, X, F, C0);
  b.add_pair_rule("veto", H, F, H, F0);
  b.add_pair_rule("rally", F, F0, F, F);
  b.add_pair_rule("damp", H, C1, H, C0);
  b.add_pair_rule("lift", F, C0, F, C1);
  return {"example 4.2 (n leaders)", b.build(), counting_predicate(n)};
}

namespace {

// Shared body of unary_counting and destructive_unary_counting: the
// destructive variant routes inputs through a transient state with a
// width-1 decay rule, which changes nothing about the predicate but
// makes the net non-pairwise.
ConstructedProtocol build_unary_counting(Count n, bool destructive) {
  if (n < 1) throw std::invalid_argument("unary_counting: n must be >= 1");
  ProtocolBuilder b;
  // State (v, d): accumulated count v in [0, n], sticky witness bit d.
  std::vector<std::vector<std::size_t>> id(static_cast<std::size_t>(n) + 1);
  for (Count v = 0; v <= n; ++v) {
    for (int d = 0; d <= 1; ++d) {
      id[static_cast<std::size_t>(v)].push_back(
          b.add_state(count_str(v) + (d ? "!" : ""), d != 0));
    }
  }
  if (destructive) {
    const std::size_t fresh = b.add_state("fresh", false);
    b.add_input(fresh);
    b.add_rule("decay", {{fresh, 1}}, {{id[1][0], 1}});
  } else {
    b.add_input(id[1][0]);
  }
  for (Count va = 0; va <= n; ++va) {
    for (Count vb = 0; vb <= va; ++vb) {
      const Count sum = va + vb;
      const Count merged = sum < n ? sum : n;
      const Count rest = sum - merged;
      for (int da = 0; da <= 1; ++da) {
        for (int db = (va == vb ? da : 0); db <= 1; ++db) {
          // The witness bit is set when this meeting accumulates n and
          // is sticky: it only ever spreads, never resets, so it is set
          // somewhere iff some interaction proved x >= n.
          const int d = (merged == n || da || db) ? 1 : 0;
          b.add_pair_rule("merge", id[static_cast<std::size_t>(va)][da],
                          id[static_cast<std::size_t>(vb)][db],
                          id[static_cast<std::size_t>(merged)][d],
                          id[static_cast<std::size_t>(rest)][d]);
        }
      }
    }
  }
  return {destructive ? "unary destructive (width-1 decay)"
                      : "unary (Theta(n) states)",
          b.build(), counting_predicate(n)};
}

}  // namespace

ConstructedProtocol unary_counting(Count n) {
  return build_unary_counting(n, /*destructive=*/false);
}

ConstructedProtocol destructive_unary_counting(Count n) {
  return build_unary_counting(n, /*destructive=*/true);
}

ConstructedProtocol binary_counting(Count n) {
  if (!is_power_of_two(n) || n < 2) {
    throw std::invalid_argument(
        "binary_counting: n must be a power of two, n >= 2");
  }
  ProtocolBuilder b;
  // Values: 0 and the powers 2^0 .. 2^(k-1) below n, plus the sticky
  // top state. A silent configuration without TOP holds distinct powers
  // below n, whose sum is at most n - 1 -- the power-of-two structure is
  // what makes the protocol sound for every input.
  std::vector<Count> values;
  values.push_back(0);
  for (Count v = 1; v < n; v *= 2) values.push_back(v);
  std::vector<std::size_t> id(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    id[i] = b.add_state(count_str(values[i]), false);
  }
  const std::size_t TOP = b.add_state("TOP", true);
  b.add_input(id[1]);  // value 1 == 2^0
  for (std::size_t i = 1; i < values.size(); ++i) {
    for (std::size_t j = 1; j <= i; ++j) {
      if (values[i] + values[j] >= n) {
        b.add_pair_rule("witness", id[i], id[j], TOP, TOP);
      } else if (i == j) {
        // Equal powers merge upward; 2 * values[i] < n here, so the
        // doubled value is still in the table.
        std::size_t up = 0;
        for (std::size_t k = 0; k < values.size(); ++k) {
          if (values[k] == 2 * values[i]) up = k;
        }
        b.add_pair_rule("merge", id[i], id[j], id[up], id[0]);
      }
    }
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    b.add_pair_rule("spread", TOP, id[i], TOP, TOP);
  }
  return {"binary (O(log n) states)", b.build(), counting_predicate(n)};
}

ConstructedProtocol threshold_belief(Count n) {
  if (n < 1) throw std::invalid_argument("threshold_belief: n must be >= 1");
  ProtocolBuilder b;
  std::vector<std::size_t> level(static_cast<std::size_t>(n));
  for (Count l = 0; l < n; ++l) {
    level[static_cast<std::size_t>(l)] =
        b.add_state("L" + count_str(l), l == n - 1);
  }
  b.add_input(level[0]);
  // Two agents at the same level push one of them up: reaching level l
  // provably requires l + 1 agents, so level n-1 witnesses x >= n.
  for (Count l = 0; l + 1 < n; ++l) {
    b.add_pair_rule("up", level[static_cast<std::size_t>(l)],
                    level[static_cast<std::size_t>(l)],
                    level[static_cast<std::size_t>(l + 1)],
                    level[static_cast<std::size_t>(l)]);
  }
  for (Count l = 0; l + 1 < n; ++l) {
    b.add_pair_rule("spread", level[static_cast<std::size_t>(n - 1)],
                    level[static_cast<std::size_t>(l)],
                    level[static_cast<std::size_t>(n - 1)],
                    level[static_cast<std::size_t>(n - 1)]);
  }
  return {"belief (n states)", b.build(), counting_predicate(n)};
}

ConstructedProtocol modulo_counting(Count m, Count r) {
  if (m < 2 || r < 0 || r >= m) {
    throw std::invalid_argument("modulo_counting: need m >= 2, 0 <= r < m");
  }
  ProtocolBuilder b;
  std::vector<std::size_t> active(static_cast<std::size_t>(m));
  for (Count v = 0; v < m; ++v) {
    active[static_cast<std::size_t>(v)] =
        b.add_state("a" + count_str(v), v == r);
  }
  const std::size_t P0 = b.add_state("p0", false);
  const std::size_t P1 = b.add_state("p1", true);
  b.add_input(active[1 % static_cast<std::size_t>(m)]);
  for (Count va = 0; va < m; ++va) {
    for (Count vb = 0; vb <= va; ++vb) {
      const Count sum = (va + vb) % m;
      b.add_pair_rule("merge", active[static_cast<std::size_t>(va)],
                      active[static_cast<std::size_t>(vb)],
                      active[static_cast<std::size_t>(sum)],
                      sum == r ? P1 : P0);
    }
    // The surviving active broadcasts its verdict to passives.
    b.add_pair_rule("tell", active[static_cast<std::size_t>(va)],
                    va == r ? P0 : P1, active[static_cast<std::size_t>(va)],
                    va == r ? P1 : P0);
  }
  Predicate p;
  p.name = "x mod " + count_str(m) + " = " + count_str(r);
  p.arity = 1;
  p.fn = [m, r](const std::vector<Count>& x) { return x[0] % m == r; };
  return {"modulo", b.build(), p};
}

ConstructedProtocol weighted_threshold(const std::vector<Count>& weights,
                                       Count threshold) {
  if (weights.empty()) {
    throw std::invalid_argument("weighted_threshold: weights must be nonempty");
  }
  for (Count w : weights) {
    if (w < 0) {
      throw std::invalid_argument("weighted_threshold: negative weight");
    }
  }
  if (threshold < 1) {
    throw std::invalid_argument("weighted_threshold: threshold must be >= 1");
  }
  ProtocolBuilder b;
  // State v_k: an agent holding partial sum k; v_threshold is the sticky
  // accepting state. The sum of held values is invariant under merges
  // (below the threshold), so v_threshold appears iff the weighted input
  // sum reaches the threshold.
  std::vector<std::size_t> value(static_cast<std::size_t>(threshold) + 1);
  for (Count v = 0; v <= threshold; ++v) {
    value[static_cast<std::size_t>(v)] =
        b.add_state("v" + count_str(v), v == threshold);
  }
  for (Count w : weights) {
    b.add_input(value[static_cast<std::size_t>(std::min(w, threshold))]);
  }
  for (Count va = 0; va < threshold; ++va) {
    for (Count vb = 0; vb <= va; ++vb) {
      const Count sum = va + vb;
      if (sum >= threshold) {
        b.add_pair_rule("fire", value[static_cast<std::size_t>(va)],
                        value[static_cast<std::size_t>(vb)],
                        value[static_cast<std::size_t>(threshold)],
                        value[static_cast<std::size_t>(threshold)]);
      } else {
        b.add_pair_rule("merge", value[static_cast<std::size_t>(va)],
                        value[static_cast<std::size_t>(vb)],
                        value[static_cast<std::size_t>(sum)], value[0]);
      }
    }
  }
  for (Count v = 0; v < threshold; ++v) {
    b.add_pair_rule("spread", value[static_cast<std::size_t>(threshold)],
                    value[static_cast<std::size_t>(v)],
                    value[static_cast<std::size_t>(threshold)],
                    value[static_cast<std::size_t>(threshold)]);
  }
  Predicate p;
  p.name = "sum w_i x_i >= " + count_str(threshold);
  p.arity = weights.size();
  p.fn = [weights, threshold](const std::vector<Count>& x) {
    Count total = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      total += weights[i] * x[i];
    }
    return total >= threshold;
  };
  return {"weighted threshold", b.build(), p};
}

ConstructedProtocol majority() {
  ProtocolBuilder b;
  const std::size_t A = b.add_state("A", true);
  const std::size_t B = b.add_state("B", false);
  const std::size_t a = b.add_state("a", true);
  const std::size_t bb = b.add_state("b", false);
  b.add_input(A);
  b.add_input(B);
  b.add_pair_rule("cancel", A, B, a, bb);
  b.add_pair_rule("recruitA", A, bb, A, a);
  b.add_pair_rule("recruitB", B, a, B, bb);
  b.add_pair_rule("tie", a, bb, bb, bb);
  Predicate p;
  p.name = "a > b";
  p.arity = 2;
  p.fn = [](const std::vector<Count>& x) { return x[0] > x[1]; };
  return {"majority (4 states)", b.build(), p};
}

std::vector<ConstructedProtocol> counting_families(Count n) {
  std::vector<ConstructedProtocol> families;
  families.push_back(unary_counting(n));
  if (is_power_of_two(n) && n >= 2) {
    families.push_back(binary_counting(n));
  }
  families.push_back(threshold_belief(n));
  families.push_back(example_4_1(n));
  families.push_back(example_4_2(n));
  return families;
}

}  // namespace core
}  // namespace ppsc
