#include "core/combinators.h"

#include <array>
#include <stdexcept>
#include <utility>

namespace ppsc {
namespace core {

namespace {

// Expands a width-2 transition into its two (pre, post) slots, pairing
// pre slot i with post slot i. Either pairing yields the same component
// projections, which is all the product correctness argument needs.
struct PairRule {
  std::array<std::size_t, 2> pre;
  std::array<std::size_t, 2> post;
};

std::vector<PairRule> pair_rules(const Protocol& p, const char* combinator) {
  std::vector<PairRule> rules;
  for (const Transition& t : p.net().transitions()) {
    if (t.width() != 2) {
      throw std::invalid_argument(std::string(combinator) +
                                  ": operand transition '" + t.name +
                                  "' has width != 2");
    }
    PairRule rule;
    std::size_t slot = 0;
    for (std::size_t q = 0; q < t.pre.size(); ++q) {
      for (Count k = 0; k < t.pre[q]; ++k) rule.pre[slot++] = q;
    }
    slot = 0;
    for (std::size_t q = 0; q < t.post.size(); ++q) {
      for (Count k = 0; k < t.post[q]; ++k) rule.post[slot++] = q;
    }
    rules.push_back(rule);
  }
  return rules;
}

ConstructedProtocol product(const ConstructedProtocol& lhs,
                            const ConstructedProtocol& rhs, bool conj) {
  const char* combinator = conj ? "conjunction" : "disjunction";
  const Protocol& pa = lhs.protocol;
  const Protocol& pb = rhs.protocol;
  if (pa.num_leaders() != 0 || pb.num_leaders() != 0) {
    throw std::invalid_argument(std::string(combinator) +
                                ": operands must be leaderless");
  }
  if (pa.input_arity() != pb.input_arity()) {
    throw std::invalid_argument(std::string(combinator) +
                                ": operands must have equal input arity");
  }

  ProtocolBuilder b;
  const std::size_t nb = pb.num_states();
  auto pair_id = [nb](std::size_t qa, std::size_t qb) {
    return qa * nb + qb;
  };
  for (std::size_t qa = 0; qa < pa.num_states(); ++qa) {
    for (std::size_t qb = 0; qb < nb; ++qb) {
      const bool out = conj ? (pa.output(qa) && pb.output(qb))
                            : (pa.output(qa) || pb.output(qb));
      b.add_state(pa.state_name(qa) + "|" + pb.state_name(qb), out);
    }
  }
  for (std::size_t dim = 0; dim < pa.input_arity(); ++dim) {
    b.add_input(pair_id(pa.input_state(dim), pb.input_state(dim)));
  }
  // A-steps: apply an A-rule to the A-components of two agents whose
  // B-components are arbitrary and carried along; symmetrically B-steps.
  // For a fully symmetric operand rule the (b1, b2) and (b2, b1)
  // instantiations are the same multiset transition; emit one copy so
  // transition counts and scheduler weights are not doubled.
  for (const PairRule& rule : pair_rules(pa, combinator)) {
    const bool symmetric =
        rule.pre[0] == rule.pre[1] && rule.post[0] == rule.post[1];
    for (std::size_t b1 = 0; b1 < nb; ++b1) {
      for (std::size_t b2 = symmetric ? b1 : 0; b2 < nb; ++b2) {
        b.add_pair_rule("A-step", pair_id(rule.pre[0], b1),
                        pair_id(rule.pre[1], b2), pair_id(rule.post[0], b1),
                        pair_id(rule.post[1], b2));
      }
    }
  }
  for (const PairRule& rule : pair_rules(pb, combinator)) {
    const bool symmetric =
        rule.pre[0] == rule.pre[1] && rule.post[0] == rule.post[1];
    for (std::size_t a1 = 0; a1 < pa.num_states(); ++a1) {
      for (std::size_t a2 = symmetric ? a1 : 0; a2 < pa.num_states(); ++a2) {
        b.add_pair_rule("B-step", pair_id(a1, rule.pre[0]),
                        pair_id(a2, rule.pre[1]), pair_id(a1, rule.post[0]),
                        pair_id(a2, rule.post[1]));
      }
    }
  }

  Predicate p;
  p.name = "(" + lhs.predicate.name + (conj ? ") and (" : ") or (") +
           rhs.predicate.name + ")";
  p.arity = lhs.predicate.arity;
  const Predicate fa = lhs.predicate;
  const Predicate fb = rhs.predicate;
  if (conj) {
    p.fn = [fa, fb](const std::vector<Count>& x) { return fa(x) && fb(x); };
  } else {
    p.fn = [fa, fb](const std::vector<Count>& x) { return fa(x) || fb(x); };
  }
  return {std::string(combinator), b.build(), p};
}

}  // namespace

ConstructedProtocol negate(const ConstructedProtocol& cp) {
  ProtocolBuilder b;
  const Protocol& src = cp.protocol;
  for (std::size_t q = 0; q < src.num_states(); ++q) {
    b.add_state(src.state_name(q), !src.output(q));
  }
  for (std::size_t dim = 0; dim < src.input_arity(); ++dim) {
    b.add_input(src.input_state(dim));
  }
  for (std::size_t q = 0; q < src.num_states(); ++q) {
    if (src.leaders(q) > 0) b.add_leaders(q, src.leaders(q));
  }
  for (const Transition& t : src.net().transitions()) {
    std::vector<std::pair<std::size_t, Count>> pre;
    std::vector<std::pair<std::size_t, Count>> post;
    for (std::size_t q = 0; q < t.pre.size(); ++q) {
      if (t.pre[q] > 0) pre.emplace_back(q, t.pre[q]);
      if (t.post[q] > 0) post.emplace_back(q, t.post[q]);
    }
    b.add_rule(t.name, pre, post);
  }
  Predicate p;
  p.name = "not(" + cp.predicate.name + ")";
  p.arity = cp.predicate.arity;
  const Predicate f = cp.predicate;
  p.fn = [f](const std::vector<Count>& x) { return !f(x); };
  return {"not " + cp.family, b.build(), p};
}

ConstructedProtocol conjunction(const ConstructedProtocol& lhs,
                                const ConstructedProtocol& rhs) {
  return product(lhs, rhs, true);
}

ConstructedProtocol disjunction(const ConstructedProtocol& lhs,
                                const ConstructedProtocol& rhs) {
  return product(lhs, rhs, false);
}

ConstructedProtocol interval_counting(Count lo, Count hi) {
  if (lo < 1 || hi < lo) {
    throw std::invalid_argument("interval_counting: need 1 <= lo <= hi");
  }
  ConstructedProtocol cp =
      conjunction(unary_counting(lo), negate(unary_counting(hi + 1)));
  cp.family = "interval";
  cp.predicate.name =
      std::to_string(lo) + " <= x <= " + std::to_string(hi);
  return cp;
}

}  // namespace core
}  // namespace ppsc
