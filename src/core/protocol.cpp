#include "core/protocol.h"

#include <algorithm>
#include <stdexcept>

namespace ppsc {
namespace core {

void PetriNet::add_transition(Transition t) {
  if (t.pre.size() != num_places_ || t.post.size() != num_places_) {
    throw std::invalid_argument("transition '" + t.name +
                                "': pre/post size does not match place count");
  }
  Count consumed = 0;
  Count produced = 0;
  for (std::size_t q = 0; q < num_places_; ++q) {
    if (t.pre[q] < 0 || t.post[q] < 0) {
      throw std::invalid_argument("transition '" + t.name +
                                  "': negative multiplicity");
    }
    consumed += t.pre[q];
    produced += t.post[q];
  }
  if (consumed != produced) {
    throw std::invalid_argument("transition '" + t.name +
                                "': not conservative (consumes " +
                                std::to_string(consumed) + ", produces " +
                                std::to_string(produced) + ")");
  }
  if (consumed == 0) {
    throw std::invalid_argument("transition '" + t.name + "': empty");
  }
  if (t.pre == t.post) {
    throw std::invalid_argument("transition '" + t.name + "': identity");
  }
  transitions_.push_back(std::move(t));
}

bool PetriNet::enabled(const Transition& t, const Config& config) const {
  for (std::size_t q = 0; q < num_places_; ++q) {
    if (config[q] < t.pre[q]) return false;
  }
  return true;
}

Config PetriNet::fire(const Transition& t, const Config& config) const {
  Config next = config;
  for (std::size_t q = 0; q < num_places_; ++q) {
    next[q] += t.post[q] - t.pre[q];
  }
  return next;
}

Count Protocol::num_leaders() const {
  Count total = 0;
  for (Count k : leaders_) total += k;
  return total;
}

Count Protocol::width() const {
  Count max_width = 0;
  for (const Transition& t : net_.transitions()) {
    max_width = std::max(max_width, t.width());
  }
  return max_width;
}

Config Protocol::initial_config(const std::vector<Count>& input) const {
  if (input.size() != input_states_.size()) {
    throw std::invalid_argument("initial_config: expected " +
                                std::to_string(input_states_.size()) +
                                " input dimensions, got " +
                                std::to_string(input.size()));
  }
  Config config = leaders_;
  for (std::size_t dim = 0; dim < input.size(); ++dim) {
    if (input[dim] < 0) {
      throw std::invalid_argument("initial_config: negative input");
    }
    config[input_states_[dim]] += input[dim];
  }
  return config;
}

Count Protocol::population(const Config& config) {
  Count total = 0;
  for (Count k : config) total += k;
  return total;
}

std::size_t ProtocolBuilder::add_state(const std::string& name, bool output) {
  if (built_) {
    throw std::logic_error("ProtocolBuilder: add_state after build()");
  }
  protocol_.state_names_.push_back(name);
  protocol_.outputs_.push_back(output ? 1 : 0);
  protocol_.leaders_.push_back(0);
  const std::size_t id = protocol_.state_names_.size() - 1;
  protocol_.state_index_.emplace(name, id);  // duplicates keep the first id
  return id;
}

void ProtocolBuilder::add_input(std::size_t state) {
  if (built_) {
    throw std::logic_error("ProtocolBuilder: add_input after build()");
  }
  check_state(state, "<input>");
  protocol_.input_states_.push_back(state);
}

void ProtocolBuilder::add_leaders(std::size_t state, Count count) {
  if (built_) {
    throw std::logic_error("ProtocolBuilder: add_leaders after build()");
  }
  check_state(state, "<leaders>");
  if (count < 0) {
    throw std::invalid_argument("ProtocolBuilder: negative leader count");
  }
  protocol_.leaders_[state] += count;
}

void ProtocolBuilder::add_rule(
    const std::string& name,
    const std::vector<std::pair<std::size_t, Count>>& pre,
    const std::vector<std::pair<std::size_t, Count>>& post) {
  if (built_) {
    throw std::logic_error("ProtocolBuilder: add_rule after build()");
  }
  const std::size_t n = protocol_.state_names_.size();
  Transition t;
  t.name = name;
  t.pre.assign(n, 0);
  t.post.assign(n, 0);
  for (const auto& entry : pre) {
    check_state(entry.first, name);
    t.pre[entry.first] += entry.second;
  }
  for (const auto& entry : post) {
    check_state(entry.first, name);
    t.post[entry.first] += entry.second;
  }
  pending_.push_back(std::move(t));
}

void ProtocolBuilder::add_pair_rule(const std::string& name, std::size_t a,
                                    std::size_t b, std::size_t c,
                                    std::size_t d) {
  if (built_) {
    throw std::logic_error("ProtocolBuilder: add_pair_rule after build()");
  }
  const std::size_t n = protocol_.state_names_.size();
  for (std::size_t q : {a, b, c, d}) check_state(q, name);
  Transition t;
  t.name = name;
  t.pre.assign(n, 0);
  t.post.assign(n, 0);
  t.pre[a] += 1;
  t.pre[b] += 1;
  t.post[c] += 1;
  t.post[d] += 1;
  if (t.pre == t.post) return;  // identity pairs carry no information
  pending_.push_back(std::move(t));
}

namespace {

std::string trim(const std::string& text) {
  std::size_t first = text.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  std::size_t last = text.find_last_not_of(" \t");
  return text.substr(first, last - first + 1);
}

}  // namespace

std::size_t ProtocolBuilder::state(const std::string& name, Output output) {
  return add_state(name, output == Output::kOne);
}

void ProtocolBuilder::initial(const std::string& name) {
  add_input(state_id(name, "<input>"));
}

void ProtocolBuilder::rule(const std::string& spec) {
  const std::size_t arrow = spec.find("->");
  if (arrow == std::string::npos) {
    throw std::invalid_argument("ProtocolBuilder: rule '" + spec +
                                "' has no '->'");
  }
  const auto parse_pair = [&](const std::string& side) {
    const std::size_t plus = side.find('+');
    if (plus == std::string::npos) {
      throw std::invalid_argument("ProtocolBuilder: rule '" + spec +
                                  "' side '" + side + "' is not a pair");
    }
    return std::make_pair(state_id(trim(side.substr(0, plus)), spec),
                          state_id(trim(side.substr(plus + 1)), spec));
  };
  const auto pre = parse_pair(spec.substr(0, arrow));
  const auto post = parse_pair(spec.substr(arrow + 2));
  add_pair_rule(trim(spec), pre.first, pre.second, post.first, post.second);
}

std::size_t ProtocolBuilder::state_id(const std::string& name,
                                      const std::string& where) const {
  const auto it = protocol_.state_index_.find(name);
  if (it == protocol_.state_index_.end()) {
    throw std::invalid_argument("ProtocolBuilder: '" + where +
                                "' references unknown state '" + name + "'");
  }
  return it->second;
}

void ProtocolBuilder::check_state(std::size_t state,
                                  const std::string& rule) const {
  if (state >= protocol_.state_names_.size()) {
    throw std::invalid_argument("ProtocolBuilder: rule '" + rule +
                                "' references state " + std::to_string(state) +
                                " before it was added");
  }
}

Protocol ProtocolBuilder::build() {
  if (built_) {
    throw std::logic_error("ProtocolBuilder: build() called twice");
  }
  built_ = true;
  const std::size_t n = protocol_.state_names_.size();
  protocol_.net_ = PetriNet(n);
  for (Transition& t : pending_) {
    // States may have been added after the rule; pad to the final count.
    t.pre.resize(n, 0);
    t.post.resize(n, 0);
    protocol_.net_.add_transition(std::move(t));
  }
  pending_.clear();
  return std::move(protocol_);
}

}  // namespace core
}  // namespace ppsc
