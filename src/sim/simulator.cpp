#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "util/rng.h"

namespace ppsc {
namespace sim {

namespace {

using core::Count;

// Sparse view of a transition for the hot loop.
struct SparseTransition {
  std::vector<std::pair<std::size_t, Count>> pre;
  std::vector<std::pair<std::size_t, Count>> delta;  // post - pre, nonzero
};

std::vector<SparseTransition> sparsify(const core::Protocol& protocol) {
  std::vector<SparseTransition> out;
  for (const core::Transition& t : protocol.net().transitions()) {
    SparseTransition s;
    for (std::size_t q = 0; q < t.pre.size(); ++q) {
      if (t.pre[q] > 0) s.pre.emplace_back(q, t.pre[q]);
      if (t.post[q] != t.pre[q]) s.delta.emplace_back(q, t.post[q] - t.pre[q]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

// Number of distinct agent sets firing `t` in `config`: the product of
// C(config[q], pre[q]). Doubles are exact far beyond any population the
// simulator will see.
double instance_weight(const SparseTransition& t, const core::Config& config) {
  double weight = 1.0;
  for (const auto& need : t.pre) {
    const Count available = config[need.first];
    if (available < need.second) return 0.0;
    for (Count k = 0; k < need.second; ++k) {
      weight *= static_cast<double>(available - k) /
                static_cast<double>(k + 1);
    }
  }
  return weight;
}

OutputSummary summarize(const core::Protocol& protocol,
                        const core::Config& config) {
  OutputSummary summary;
  for (std::size_t q = 0; q < config.size(); ++q) {
    if (config[q] == 0) continue;
    if (protocol.output(q)) {
      summary.has_one = true;
    } else {
      summary.has_zero = true;
    }
  }
  return summary;
}

}  // namespace

SilenceRun run_to_silence(const core::Protocol& protocol,
                          const std::vector<core::Count>& input,
                          const RunOptions& options) {
  const std::vector<SparseTransition> transitions = sparsify(protocol);
  util::Xoshiro256 rng(options.seed);

  // Incremental weight cache: a fired transition only changes the
  // counts on its delta places, so only transitions whose pre touches
  // one of those places can change weight. Binomial weights of width
  // >= 3 divide (by 3, 5, ...) and are not exactly representable, so
  // the incremental total can drift by ~1 ulp per update -- silence is
  // therefore detected from the exact per-transition weights (zero is
  // exact), never from the accumulated total, and the selection loop
  // below only ever lands on transitions with positive weight.
  std::vector<std::vector<std::size_t>> dependents(protocol.num_states());
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    for (const auto& need : transitions[i].pre) {
      dependents[need.first].push_back(i);
    }
  }
  std::vector<std::uint64_t> touched(transitions.size(), 0);
  std::uint64_t stamp = 0;

  SilenceRun run;
  run.final_config = protocol.initial_config(input);
  // Rebuilding the exact sum every so often caps the accumulated
  // +=/-= rounding drift: between rebuilds it stays below
  // ~interval * num_transitions * eps relative to the largest total of
  // the window, far inside the assert tolerance below.
  constexpr std::uint64_t kRebuildInterval = 1024;
  std::vector<double> weights(transitions.size(), 0.0);
  double total = 0.0;
  std::size_t num_active = 0;
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    weights[i] = instance_weight(transitions[i], run.final_config);
    total += weights[i];
    if (weights[i] > 0.0) ++num_active;
  }
  double peak_total = total;  // largest total since the last rebuild
  while (run.steps < options.max_steps) {
#ifndef NDEBUG
    {
      // Drift scales with the largest total the incremental updates
      // ever saw, not with the current (possibly much smaller) sum.
      double recomputed = 0.0;
      for (std::size_t i = 0; i < transitions.size(); ++i) {
        recomputed += instance_weight(transitions[i], run.final_config);
      }
      assert(std::abs(total - recomputed) <=
             1e-9 * std::max(1.0, peak_total));
    }
#endif
    if (num_active == 0) {
      run.silent = true;
      break;
    }
    double pick = rng.unit() * total;
    // Rounding can leave pick barely non-negative after the last
    // positive weight; never fall through to a disabled transition.
    std::size_t chosen = 0;
    for (std::size_t i = 0; i < transitions.size(); ++i) {
      if (weights[i] == 0.0) continue;
      chosen = i;
      pick -= weights[i];
      if (pick < 0.0) break;
    }
    for (const auto& change : transitions[chosen].delta) {
      run.final_config[change.first] += change.second;
    }
    ++stamp;
    for (const auto& change : transitions[chosen].delta) {
      for (std::size_t dependent : dependents[change.first]) {
        if (touched[dependent] == stamp) continue;
        touched[dependent] = stamp;
        total -= weights[dependent];
        if (weights[dependent] > 0.0) --num_active;
        weights[dependent] =
            instance_weight(transitions[dependent], run.final_config);
        total += weights[dependent];
        if (weights[dependent] > 0.0) ++num_active;
      }
    }
    peak_total = std::max(peak_total, total);
    ++run.steps;
    if (run.steps % kRebuildInterval == 0) {
      total = 0.0;
      for (double w : weights) total += w;
      peak_total = total;
    }
  }
  run.final_output = summarize(protocol, run.final_config);
  return run;
}

ConvergenceStats measure_convergence(const core::ConstructedProtocol& cp,
                                     const std::vector<core::Count>& input,
                                     std::size_t runs,
                                     const RunOptions& options) {
  ConvergenceStats stats;
  stats.runs = runs;
  const bool expected = cp.predicate(input);
  double total_steps = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    RunOptions per_run = options;
    per_run.seed = options.seed + r;
    const SilenceRun run = run_to_silence(cp.protocol, input, per_run);
    total_steps += static_cast<double>(run.steps);
    stats.max_steps =
        std::max(stats.max_steps, static_cast<double>(run.steps));
    if (run.silent) {
      ++stats.converged;
      // unanimous() scores the empty population as correct either way,
      // the same vacuous-truth convention verify::check_input applies.
      if (run.final_output.unanimous(expected)) {
        ++stats.correct;
      }
    }
  }
  if (runs > 0) stats.mean_steps = total_steps / static_cast<double>(runs);
  return stats;
}

}  // namespace sim
}  // namespace ppsc
