#include "sim/simulator.h"

#include "sim/scheduler.h"

namespace ppsc {
namespace sim {

OutputSummary summarize_output(const core::Protocol& protocol,
                               const core::Config& config) {
  OutputSummary summary;
  for (std::size_t q = 0; q < config.size(); ++q) {
    if (config[q] == 0) continue;
    if (protocol.output(q)) {
      summary.has_one = true;
    } else {
      summary.has_zero = true;
    }
  }
  return summary;
}

SilenceRun run_to_silence(const core::Protocol& protocol,
                          const std::vector<core::Count>& input,
                          const RunOptions& options) {
  CountSimulator simulator(protocol, protocol.initial_config(input),
                           options.seed);
  SilenceRun run;
  while (run.steps < options.max_steps) {
    if (!simulator.step()) {
      run.silent = true;
      break;
    }
    ++run.steps;
  }
  run.final_config = simulator.census();
  run.final_output = summarize_output(protocol, run.final_config);
  simulator.publish_metrics();
  return run;
}

// measure_convergence lives in src/sim/parallel.cpp: it is the
// one-thread case of the parallel sweep runner.

}  // namespace sim
}  // namespace ppsc
