#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "util/rng.h"

namespace ppsc {
namespace sim {

namespace {

using core::Count;

// Sparse view of a transition for the hot loop.
struct SparseTransition {
  std::vector<std::pair<std::size_t, Count>> pre;
  std::vector<std::pair<std::size_t, Count>> delta;  // post - pre, nonzero
};

std::vector<SparseTransition> sparsify(const core::Protocol& protocol) {
  std::vector<SparseTransition> out;
  for (const core::Transition& t : protocol.net().transitions()) {
    SparseTransition s;
    for (std::size_t q = 0; q < t.pre.size(); ++q) {
      if (t.pre[q] > 0) s.pre.emplace_back(q, t.pre[q]);
      if (t.post[q] != t.pre[q]) s.delta.emplace_back(q, t.post[q] - t.pre[q]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

// Number of distinct agent sets firing `t` in `config`: the product of
// C(config[q], pre[q]). Doubles are exact far beyond any population the
// simulator will see.
double instance_weight(const SparseTransition& t, const core::Config& config) {
  double weight = 1.0;
  for (const auto& need : t.pre) {
    const Count available = config[need.first];
    if (available < need.second) return 0.0;
    for (Count k = 0; k < need.second; ++k) {
      weight *= static_cast<double>(available - k) /
                static_cast<double>(k + 1);
    }
  }
  return weight;
}

OutputSummary summarize(const core::Protocol& protocol,
                        const core::Config& config) {
  OutputSummary summary;
  for (std::size_t q = 0; q < config.size(); ++q) {
    if (config[q] == 0) continue;
    if (protocol.output(q)) {
      summary.has_one = true;
    } else {
      summary.has_zero = true;
    }
  }
  return summary;
}

}  // namespace

SilenceRun run_to_silence(const core::Protocol& protocol,
                          const std::vector<core::Count>& input,
                          const RunOptions& options) {
  const std::vector<SparseTransition> transitions = sparsify(protocol);
  std::vector<double> weights(transitions.size(), 0.0);
  util::Xoshiro256 rng(options.seed);

  SilenceRun run;
  run.final_config = protocol.initial_config(input);
  while (run.steps < options.max_steps) {
    double total = 0.0;
    for (std::size_t i = 0; i < transitions.size(); ++i) {
      weights[i] = instance_weight(transitions[i], run.final_config);
      total += weights[i];
    }
    if (total == 0.0) {
      run.silent = true;
      break;
    }
    double pick = rng.unit() * total;
    // Rounding can leave pick barely non-negative after the last
    // positive weight; never fall through to a disabled transition.
    std::size_t chosen = 0;
    for (std::size_t i = 0; i < transitions.size(); ++i) {
      if (weights[i] == 0.0) continue;
      chosen = i;
      pick -= weights[i];
      if (pick < 0.0) break;
    }
    for (const auto& change : transitions[chosen].delta) {
      run.final_config[change.first] += change.second;
    }
    ++run.steps;
  }
  run.final_output = summarize(protocol, run.final_config);
  return run;
}

ConvergenceStats measure_convergence(const core::ConstructedProtocol& cp,
                                     const std::vector<core::Count>& input,
                                     std::size_t runs,
                                     const RunOptions& options) {
  ConvergenceStats stats;
  stats.runs = runs;
  const bool expected = cp.predicate(input);
  double total_steps = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    RunOptions per_run = options;
    per_run.seed = options.seed + r;
    const SilenceRun run = run_to_silence(cp.protocol, input, per_run);
    total_steps += static_cast<double>(run.steps);
    stats.max_steps =
        std::max(stats.max_steps, static_cast<double>(run.steps));
    if (run.silent) {
      ++stats.converged;
      const bool consensus_one = run.final_output.exactly_one();
      const bool consensus_zero = run.final_output.subset_of_zero();
      if ((expected && consensus_one) || (!expected && consensus_zero)) {
        ++stats.correct;
      }
    }
  }
  if (runs > 0) stats.mean_steps = total_steps / static_cast<double>(runs);
  return stats;
}

}  // namespace sim
}  // namespace ppsc
