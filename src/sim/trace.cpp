#include "sim/trace.h"

#include "obs/trace.h"
#include "sim/scheduler.h"

namespace ppsc {
namespace sim {

namespace {

CensusPoint make_point(const core::Protocol& protocol, std::uint64_t step,
                       const core::Config& census) {
  CensusPoint point;
  point.step = step;
  point.census = census;
  for (std::size_t q = 0; q < census.size(); ++q) {
    (protocol.output(q) ? point.output_one : point.output_zero) += census[q];
  }
  return point;
}

}  // namespace

CensusTrace record_census_trace(const core::Protocol& protocol,
                                const std::vector<core::Count>& input,
                                std::uint64_t max_steps, std::uint64_t seed) {
  CensusTrace trace;
  obs::ScopedSpan span("sim.trace", "sim");
  span.arg("seed", seed);
  const core::Config initial = protocol.initial_config(input);
  const std::optional<PairRuleTable> table = PairRuleTable::build(protocol);

  // Both schedulers expose the same silent()/steps()/census() surface,
  // so one driver serves the fast path and the fallback. Records
  // whenever the productive-step count first reaches the next power of
  // two, plus the initial and final configurations.
  const auto drive = [&](auto& simulator) {
    std::uint64_t next_sample = 0;
    const auto sample_due = [&](std::uint64_t step) {
      if (step < next_sample) return;
      trace.points.push_back(make_point(protocol, step, simulator.census()));
      next_sample = step == 0 ? 1 : step * 2;
    };
    sample_due(0);
    while (!simulator.silent() && simulator.steps() < max_steps) {
      if (simulator.step()) sample_due(simulator.steps());
    }
    trace.converged = simulator.silent();
    trace.total_steps = simulator.steps();
    if (trace.points.back().step != trace.total_steps) {
      trace.points.push_back(
          make_point(protocol, trace.total_steps, simulator.census()));
    }
  };

  // Both schedulers publish their run totals (sim.agent.* /
  // sim.count.*), so census traces contribute to bench reports the
  // same way sweep runs do.
  if (table) {
    AgentSimulator simulator(*table, initial, seed);
    drive(simulator);
    simulator.publish_metrics();
  } else {
    CountSimulator simulator(protocol, initial, seed);
    drive(simulator);
    simulator.publish_metrics();
  }
  span.arg("steps", trace.total_steps);
  return trace;
}

}  // namespace sim
}  // namespace ppsc
