#include "sim/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "sim/weights.h"

namespace ppsc {
namespace sim {

using core::Count;

// ---------------------------------------------------------------------------
// PairRuleTable
// ---------------------------------------------------------------------------

std::optional<PairRuleTable> PairRuleTable::build(
    const core::Protocol& protocol) {
  const std::size_t n = protocol.num_states();
  PairRuleTable table;
  table.num_states_ = n;
  table.cells_.assign(n * n, Outcome{});
  table.partners_.assign(n, {});

  for (const core::Transition& t : protocol.net().transitions()) {
    if (t.width() != 2) return std::nullopt;
    // Decompose pre and post into ordered state pairs. Width 2 means
    // either one state with count 2 or two states with count 1 each;
    // conservation guarantees the same for post.
    std::uint32_t pre[2];
    std::uint32_t post[2];
    std::size_t num_pre = 0;
    std::size_t num_post = 0;
    for (std::size_t q = 0; q < n; ++q) {
      for (Count k = 0; k < t.pre[q]; ++k) {
        pre[num_pre++] = static_cast<std::uint32_t>(q);
      }
      for (Count k = 0; k < t.post[q]; ++k) {
        post[num_post++] = static_cast<std::uint32_t>(q);
      }
    }
    assert(num_pre == 2 && num_post == 2);
    const auto set_cell = [&table, n](std::uint32_t a, std::uint32_t b,
                                      std::uint32_t c,
                                      std::uint32_t d) -> bool {
      Outcome& cell = table.cells_[a * n + b];
      if (cell.first != kNoRule) {
        // Re-registering the identical outcome is still deterministic
        // (a protocol may list the same transition twice); only a pair
        // mapped to two different outcomes is nondeterministic.
        return cell.first == c && cell.second == d;
      }
      cell.first = c;
      cell.second = d;
      return true;
    };
    if (!set_cell(pre[0], pre[1], post[0], post[1])) return std::nullopt;
    if (pre[0] != pre[1] &&
        !set_cell(pre[1], pre[0], post[1], post[0])) {
      return std::nullopt;
    }
  }

  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (table.cells_[a * n + b].first != kNoRule) {
        table.partners_[a].push_back(static_cast<std::uint32_t>(b));
      }
    }
  }
  return table;
}

// ---------------------------------------------------------------------------
// AgentSimulator
// ---------------------------------------------------------------------------

AgentSimulator::AgentSimulator(const PairRuleTable& table,
                               const core::Config& initial,
                               std::uint64_t seed)
    : table_(&table),
      rng_(seed),
      counts_(initial),
      obs_(obs::MetricRegistry::global().enabled()) {
  if (initial.size() != table.num_states()) {
    throw std::invalid_argument(
        "AgentSimulator: configuration dimension does not match table");
  }
  core::Count population = 0;
  for (std::size_t q = 0; q < initial.size(); ++q) {
    if (initial[q] < 0) {
      throw std::invalid_argument("AgentSimulator: negative count");
    }
    population += initial[q];
  }
  agents_.reserve(static_cast<std::size_t>(population));
  for (std::size_t q = 0; q < initial.size(); ++q) {
    agents_.insert(agents_.end(), static_cast<std::size_t>(initial[q]),
                   static_cast<std::uint32_t>(q));
  }
  for (std::size_t q = 0; q < counts_.size(); ++q) {
    // Counts each enabled ordered cell exactly once: cell (a, b) is
    // visited from row a only.
    for (std::uint32_t b : table_->partners(q)) {
      enabled_pairs_ += q == b ? counts_[q] * (counts_[q] - 1)
                               : counts_[q] * counts_[b];
    }
  }
}

long long AgentSimulator::pair_contribution(std::size_t state) const {
  // Ordered pairs whose cell involves `state` in either position: the
  // symmetric cells (s, b) and (b, s) contribute twice c_s * c_b, the
  // diagonal cell (s, s) contributes c_s * (c_s - 1) ordered pairs.
  long long contribution = 0;
  const long long cs = counts_[state];
  for (std::uint32_t b : table_->partners(state)) {
    contribution += b == state ? cs * (cs - 1) : 2 * cs * counts_[b];
  }
  return contribution;
}

template <bool kObs>
void AgentSimulator::change_count(std::size_t state, core::Count delta) {
  if (kObs) {
    // pair_contribution walks the partner list once per call and is
    // called twice below -- the silence-detection work the obs layer
    // reports as sim.agent.scan_work.
    scan_work_ += 2 * table_->partners(state).size();
  }
  enabled_pairs_ -= pair_contribution(state);
  counts_[state] += delta;
  enabled_pairs_ += pair_contribution(state);
}

template <bool kObs>
bool AgentSimulator::step_impl() {
  ++interactions_;
  const std::uint64_t population = agents_.size();
  if (population < 2) return false;
  const std::uint64_t i = rng_.below(population);
  std::uint64_t j = rng_.below(population - 1);
  if (j >= i) ++j;
  const PairRuleTable::Outcome* outcome =
      table_->rule(agents_[i], agents_[j]);
  if (outcome == nullptr) return false;
  change_count<kObs>(agents_[i], -1);
  change_count<kObs>(agents_[j], -1);
  change_count<kObs>(outcome->first, +1);
  change_count<kObs>(outcome->second, +1);
  agents_[i] = outcome->first;
  agents_[j] = outcome->second;
  ++steps_;
  return true;
}

template bool AgentSimulator::step_impl<false>();
template bool AgentSimulator::step_impl<true>();

void AgentSimulator::publish_metrics() const {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  if (!registry.enabled()) return;
  registry.add("sim.agent.runs", 1);
  registry.add("sim.agent.draws", interactions_);
  registry.add("sim.agent.productive", steps_);
  registry.add("sim.agent.scan_work", scan_work_);
}

// ---------------------------------------------------------------------------
// CountSimulator
// ---------------------------------------------------------------------------

namespace {

// Rebuilding the exact weight sum every so often caps the accumulated
// +=/-= rounding drift: between rebuilds it stays below
// ~interval * num_transitions * eps relative to the largest total of
// the window, far inside the debug-assert tolerance in step().
constexpr std::uint64_t kRebuildInterval = 1024;

}  // namespace

CountSimulator::CountSimulator(const core::Protocol& protocol,
                               core::Config initial, std::uint64_t seed)
    : rng_(seed), config_(std::move(initial)) {
  if (config_.size() != protocol.num_states()) {
    throw std::invalid_argument(
        "CountSimulator: configuration dimension does not match protocol");
  }
  for (const core::Transition& t : protocol.net().transitions()) {
    SparseTransition s;
    for (std::size_t q = 0; q < t.pre.size(); ++q) {
      if (t.pre[q] > 0) s.pre.emplace_back(q, t.pre[q]);
      if (t.post[q] != t.pre[q]) s.delta.emplace_back(q, t.post[q] - t.pre[q]);
    }
    transitions_.push_back(std::move(s));
  }
  // Incremental weight cache: a fired transition only changes the
  // counts on its delta places, so only transitions whose pre touches
  // one of those places can change weight.
  dependents_.assign(protocol.num_states(), {});
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    for (const auto& need : transitions_[i].pre) {
      dependents_[need.first].push_back(i);
    }
  }
  touched_.assign(transitions_.size(), 0);
  weights_.assign(transitions_.size(), 0.0);
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    weights_[i] = instance_weight(transitions_[i]);
    total_ += weights_[i];
    if (weights_[i] > 0.0) ++num_active_;
  }
  peak_total_ = total_;
}

// Number of distinct agent sets firing `t` in the current
// configuration: the product of C(config[q], pre[q]) (see
// sim/weights.h for the shared per-place factor).
double CountSimulator::instance_weight(const SparseTransition& t) const {
  double weight = 1.0;
  for (const auto& need : t.pre) {
    const double factor =
        binomial_instances<double>(config_[need.first], need.second);
    if (factor == 0.0) return 0.0;
    weight *= factor;
  }
  return weight;
}

bool CountSimulator::step() {
#ifndef NDEBUG
  {
    // Binomial weights of width >= 3 divide (by 3, 5, ...) and are not
    // exactly representable, so the incremental total can drift by
    // ~1 ulp per update. Drift scales with the largest total the
    // incremental updates ever saw, not with the current (possibly
    // much smaller) sum -- hence the peak-relative tolerance. Silence
    // is detected from the exact per-transition weights (zero is
    // exact), never from the accumulated total.
    double recomputed = 0.0;
    for (const SparseTransition& t : transitions_) {
      recomputed += instance_weight(t);
    }
    assert(std::abs(total_ - recomputed) <= 1e-9 * std::max(1.0, peak_total_));
  }
#endif
  if (num_active_ == 0) return false;
  double pick = rng_.unit() * total_;
  // Rounding can leave pick barely non-negative after the last positive
  // weight; never fall through to a disabled transition.
  std::size_t chosen = 0;
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    if (weights_[i] == 0.0) continue;
    chosen = i;
    pick -= weights_[i];
    if (pick < 0.0) break;
  }
  for (const auto& change : transitions_[chosen].delta) {
    config_[change.first] += change.second;
  }
  ++stamp_;
  for (const auto& change : transitions_[chosen].delta) {
    for (std::size_t dependent : dependents_[change.first]) {
      if (touched_[dependent] == stamp_) continue;
      touched_[dependent] = stamp_;
      ++weight_updates_;
      total_ -= weights_[dependent];
      if (weights_[dependent] > 0.0) --num_active_;
      weights_[dependent] = instance_weight(transitions_[dependent]);
      total_ += weights_[dependent];
      if (weights_[dependent] > 0.0) ++num_active_;
    }
  }
  peak_total_ = std::max(peak_total_, total_);
  ++steps_;
  if (steps_ % kRebuildInterval == 0) {
    total_ = 0.0;
    for (double w : weights_) total_ += w;
    peak_total_ = total_;
  }
  return true;
}

void CountSimulator::publish_metrics() const {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  if (!registry.enabled()) return;
  registry.add("sim.count.runs", 1);
  registry.add("sim.count.productive", steps_);
  registry.add("sim.count.weight_updates", weight_updates_);
}

}  // namespace sim
}  // namespace ppsc
