#include "sim/census.h"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace ppsc {
namespace sim {

CensusSimulator::CensusSimulator(const PairRuleTable& table,
                                 const core::Config& initial,
                                 std::uint64_t seed)
    : table_(&table), rng_(seed), counts_(initial) {
  if (initial.size() != table.num_states()) {
    throw std::invalid_argument(
        "CensusSimulator: configuration dimension does not match table");
  }
  for (const core::Count c : initial) {
    if (c < 0) {
      throw std::invalid_argument("CensusSimulator: negative count");
    }
    population_ += c;
  }
  cells_of_state_.assign(table.num_states(), {});
  for (std::uint32_t a = 0; a < table.num_states(); ++a) {
    for (std::uint32_t b : table.partners(a)) {
      const PairRuleTable::Outcome* outcome = table.rule(a, b);
      Cell cell;
      cell.a = a;
      cell.b = b;
      cell.first = outcome->first;
      cell.second = outcome->second;
      const std::uint32_t index = static_cast<std::uint32_t>(cells_.size());
      cells_.push_back(cell);
      cells_of_state_[a].push_back(index);
      if (b != a) cells_of_state_[b].push_back(index);
    }
  }
  touched_.assign(cells_.size(), 0);
  weights_.assign(cells_.size(), 0);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    weights_[i] = cell_weight(cells_[i]);
    enabled_pairs_ += weights_[i];
  }
}

long long CensusSimulator::cell_weight(const Cell& cell) const {
  const long long ca = counts_[cell.a];
  return cell.a == cell.b ? ca * (ca - 1) : ca * counts_[cell.b];
}

void CensusSimulator::rebuild_alias() {
  ++rebuilds_;
  const std::size_t num_cells = cells_.size();
  alias_prob_.assign(num_cells, 1.0);
  alias_of_.resize(num_cells);
  // Vose's O(R) construction over the exact integer weights; the
  // double division only perturbs sampling probabilities by ~1 ulp.
  std::vector<std::uint32_t>& small = scratch_small_;
  std::vector<std::uint32_t>& large = scratch_large_;
  small.clear();
  large.clear();
  std::uint32_t some_enabled = 0;
  const double scale =
      static_cast<double>(num_cells) / static_cast<double>(enabled_pairs_);
  std::vector<double>& scaled = scratch_scaled_;
  scaled.resize(num_cells);
  for (std::uint32_t i = 0; i < num_cells; ++i) {
    alias_of_[i] = i;
    scaled[i] = static_cast<double>(weights_[i]) * scale;
    if (weights_[i] > 0) some_enabled = i;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    alias_prob_[s] = scaled[s];
    alias_of_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers keep probability 1 -- except a disabled cell stranded by
  // floating-point imbalance, which must still redirect somewhere
  // enabled.
  for (const std::uint32_t s : small) {
    if (weights_[s] == 0) {
      alias_prob_[s] = 0.0;
      alias_of_[s] = some_enabled;
    }
  }
  dirty_ = false;
}

bool CensusSimulator::step() {
  if (enabled_pairs_ == 0) return false;
  // Null draws before the next productive one are geometric with
  // success probability p = W / (n(n-1)); population_ stays below
  // ~3e9, so the ordered-pair denominator is exact in 64 bits.
  const long long ordered_pairs = population_ * (population_ - 1);
  if (enabled_pairs_ < ordered_pairs) {
    const double p = static_cast<double>(enabled_pairs_) /
                     static_cast<double>(ordered_pairs);
    const double u = rng_.unit();
    const double skipped = std::floor(std::log1p(-u) / std::log1p(-p));
    // The cast bound keeps a p ~ 1e-18 tail draw from overflowing.
    const std::uint64_t nulls =
        skipped >= 0x1.0p62 ? (1ull << 62) : static_cast<std::uint64_t>(skipped);
    interactions_ += nulls;
    null_skipped_ += nulls;
  }
  ++interactions_;

  if (dirty_) rebuild_alias();
  const std::uint64_t slot = rng_.below(cells_.size());
  const std::uint32_t chosen =
      rng_.unit() < alias_prob_[slot] ? static_cast<std::uint32_t>(slot)
                                      : alias_of_[slot];
  const Cell& cell = cells_[chosen];
  --counts_[cell.a];
  --counts_[cell.b];
  ++counts_[cell.first];
  ++counts_[cell.second];

  ++stamp_;
  const std::uint32_t changed[4] = {cell.a, cell.b, cell.first, cell.second};
  for (const std::uint32_t q : changed) {
    for (const std::uint32_t index : cells_of_state_[q]) {
      if (touched_[index] == stamp_) continue;
      touched_[index] = stamp_;
      const long long updated = cell_weight(cells_[index]);
      if (updated != weights_[index]) {
        enabled_pairs_ += updated - weights_[index];
        weights_[index] = updated;
        dirty_ = true;
      }
    }
  }
  ++steps_;
  return true;
}

void CensusSimulator::publish_metrics() const {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  if (!registry.enabled()) return;
  registry.add("sim.census.runs", 1);
  registry.add("sim.census.productive", steps_);
  registry.add("sim.census.null_skipped", null_skipped_);
  registry.add("sim.census.rebuilds", rebuilds_);
}

}  // namespace sim
}  // namespace ppsc
