#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "obs/trace.h"
#include "sim/census.h"
#include "sim/scheduler.h"
#include "sim/sharded.h"

namespace ppsc {
namespace sim {

namespace {

struct RunOutcome {
  bool silent = false;
  std::uint64_t steps = 0;
  OutputSummary output;
};

RunOutcome run_agent_path(const PairRuleTable& table,
                          const core::Protocol& protocol,
                          const core::Config& initial,
                          const RunOptions& options, std::uint64_t seed) {
  // One span per run, recorded on whichever worker thread executed it
  // -- the per-thread tracks in a Perfetto view of a parallel sweep.
  obs::ScopedSpan span("sim.run", "sim");
  span.arg("seed", seed);
  AgentSimulator simulator(table, initial, seed);
  const std::uint64_t interval =
      std::max<std::uint64_t>(1, options.silence_check_interval);
  std::uint64_t since_poll = 0;
  RunOutcome outcome;
  outcome.silent = simulator.silent();
  while (!outcome.silent && simulator.steps() < options.max_steps) {
    simulator.step();
    if (++since_poll >= interval) {
      since_poll = 0;
      outcome.silent = simulator.silent();
    }
  }
  outcome.steps = simulator.steps();
  outcome.output = summarize_output(protocol, simulator.census());
  simulator.publish_metrics();
  span.arg("steps", outcome.steps);
  return outcome;
}

RunOutcome run_count_path(const core::Protocol& protocol,
                          const std::vector<core::Count>& input,
                          const RunOptions& options, std::uint64_t seed) {
  obs::ScopedSpan span("sim.run", "sim");
  span.arg("seed", seed);
  RunOptions per_run = options;
  per_run.seed = seed;
  const SilenceRun run = run_to_silence(protocol, input, per_run);
  span.arg("steps", run.steps);
  return {run.silent, run.steps, run.final_output};
}

RunOutcome run_sharded_path(const PairRuleTable& table,
                            const core::Protocol& protocol,
                            const core::Config& initial,
                            const RunOptions& options, std::uint64_t seed,
                            unsigned sweep_workers) {
  obs::ScopedSpan span("sim.shard.run", "sim");
  span.arg("seed", seed);
  ShardedOptions sharded;
  sharded.shards = options.shards;
  // A sweep that already parallelizes across runs keeps each sharded
  // run single-threaded; sharding still pays via locality + prefetch
  // batching, and the result is worker-count-independent either way.
  if (sweep_workers > 1) sharded.workers = 1;
  ShardedSimulator simulator(table, initial, seed, sharded);
  simulator.run(options.max_steps);
  RunOutcome outcome;
  outcome.silent = simulator.silent();
  // Epoch granularity can overshoot the budget; report at most the
  // budget, like the per-step paths.
  outcome.steps = std::min(simulator.steps(), options.max_steps);
  outcome.output = summarize_output(protocol, simulator.census());
  simulator.publish_metrics();
  span.arg("steps", outcome.steps);
  return outcome;
}

RunOutcome run_census_path(const PairRuleTable& table,
                           const core::Protocol& protocol,
                           const core::Config& initial,
                           const RunOptions& options, std::uint64_t seed) {
  obs::ScopedSpan span("sim.run", "sim");
  span.arg("seed", seed);
  CensusSimulator simulator(table, initial, seed);
  RunOutcome outcome;
  outcome.silent = simulator.silent();
  while (!outcome.silent && simulator.steps() < options.max_steps) {
    simulator.step();
    outcome.silent = simulator.silent();
  }
  outcome.steps = simulator.steps();
  outcome.output = summarize_output(protocol, simulator.census());
  simulator.publish_metrics();
  span.arg("steps", outcome.steps);
  return outcome;
}

}  // namespace

SchedulerChoice planned_scheduler(const RunOptions& options, bool has_table,
                                  std::size_t num_states,
                                  core::Count population) {
  // Thresholds (rationale in docs/sim-sharding.md): the census path
  // needs a small alias table and enough agents that skipping null
  // draws matters; the sharded path only beats the plain agent array
  // once the array has fallen out of cache. All committed goldens and
  // sweep benches run populations far below both cutoffs, so kAuto
  // changes nothing for them.
  constexpr std::size_t kCensusMaxStates = 64;
  constexpr core::Count kCensusMinPopulation = 1 << 16;
  constexpr core::Count kShardMinPopulation = core::Count{1} << 22;
  if (!has_table) return SchedulerChoice::kCount;
  switch (options.scheduler) {
    case SchedulerChoice::kAgent:
    case SchedulerChoice::kSharded:
    case SchedulerChoice::kCensus:
    case SchedulerChoice::kCount:
      return options.scheduler;
    case SchedulerChoice::kAuto:
      break;
  }
  if (num_states <= kCensusMaxStates && population >= kCensusMinPopulation) {
    return SchedulerChoice::kCensus;
  }
  if (population >= kShardMinPopulation) return SchedulerChoice::kSharded;
  return SchedulerChoice::kAgent;
}

ConvergenceStats measure_convergence_parallel(
    const core::ConstructedProtocol& cp, const std::vector<core::Count>& input,
    std::size_t runs, const RunOptions& options, unsigned num_threads) {
  obs::ScopedSpan sweep_span("sim.sweep", "sim");
  sweep_span.arg("runs", runs);
  const bool expected = cp.predicate(input);
  const core::Config initial = cp.protocol.initial_config(input);
  // Compiled once, shared read-only by every worker.
  const std::optional<PairRuleTable> table =
      PairRuleTable::build(cp.protocol);

  core::Count population = 0;
  for (const core::Count c : initial) population += c;
  const SchedulerChoice choice = planned_scheduler(
      options, table.has_value(), cp.protocol.num_states(), population);

  unsigned workers = num_threads;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(runs, 1)));

  std::vector<RunOutcome> outcomes(runs);
  const auto run_one = [&, choice, workers](std::size_t r) {
    const std::uint64_t seed = options.seed + r;
    switch (choice) {
      case SchedulerChoice::kSharded:
        outcomes[r] = run_sharded_path(*table, cp.protocol, initial, options,
                                       seed, workers);
        return;
      case SchedulerChoice::kCensus:
        outcomes[r] =
            run_census_path(*table, cp.protocol, initial, options, seed);
        return;
      case SchedulerChoice::kCount:
        outcomes[r] = run_count_path(cp.protocol, input, options, seed);
        return;
      case SchedulerChoice::kAgent:
      case SchedulerChoice::kAuto:
        break;
    }
    outcomes[r] =
        run_agent_path(*table, cp.protocol, initial, options, seed);
  };
  if (workers <= 1) {
    for (std::size_t r = 0; r < runs; ++r) run_one(r);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&]() {
        for (std::size_t r = next.fetch_add(1); r < runs;
             r = next.fetch_add(1)) {
          run_one(r);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }

  // Aggregation in run-index order: the floating-point sums below are
  // evaluated in the same order regardless of thread count, which is
  // what makes the sweep bit-deterministic.
  ConvergenceStats stats;
  stats.runs = runs;
  double total_steps = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    const RunOutcome& outcome = outcomes[r];
    total_steps += static_cast<double>(outcome.steps);
    stats.max_steps_observed =
        std::max(stats.max_steps_observed, static_cast<double>(outcome.steps));
    if (outcome.silent) {
      ++stats.converged;
      // unanimous() scores the empty population as correct either way,
      // the same vacuous-truth convention verify::check_input applies.
      if (outcome.output.unanimous(expected)) {
        ++stats.correct;
      }
    }
  }
  if (runs > 0) stats.mean_steps = total_steps / static_cast<double>(runs);
  return stats;
}

ConvergenceStats measure_convergence(const core::ConstructedProtocol& cp,
                                     const std::vector<core::Count>& input,
                                     std::size_t runs,
                                     const RunOptions& options) {
  return measure_convergence_parallel(cp, input, runs, options, 1);
}

}  // namespace sim
}  // namespace ppsc
