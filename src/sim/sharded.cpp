#include "sim/sharded.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace ppsc {
namespace sim {

namespace {

// Draw positions for this many pairs before touching any agent slot:
// the position draws are state-independent, so they can all be issued
// first and both slots of every pair prefetched while the RNG works on
// the next ones. Applying the outcomes stays strictly sequential,
// which keeps the chain identical to drawing and applying one at a
// time (pair k's application sees every earlier application).
constexpr std::uint64_t kGroup = 64;

constexpr std::size_t kDefaultShards = 8;

}  // namespace

ShardedSimulator::ShardedSimulator(const PairRuleTable& table,
                                   const core::Config& initial,
                                   std::uint64_t seed,
                                   ShardedOptions options)
    : table_(&table),
      exchange_rng_(seed),
      batch_(std::max<std::uint64_t>(1, options.batch)),
      exchange_shift_(std::min(options.exchange_shift, 63u)),
      counts_(initial.size(), 0) {
  if (initial.size() != table.num_states()) {
    throw std::invalid_argument(
        "ShardedSimulator: configuration dimension does not match table");
  }
  core::Count population = 0;
  for (const core::Count c : initial) {
    if (c < 0) {
      throw std::invalid_argument("ShardedSimulator: negative count");
    }
    population += c;
  }
  const std::size_t n = static_cast<std::size_t>(population);
  const std::size_t num_shards =
      std::max<std::size_t>(1, options.shards == 0 ? kDefaultShards
                                                   : options.shards);
  // The exchange stream lives on the long_jump axis, disjoint from the
  // jump-derived shard streams for any draw budget.
  exchange_rng_.long_jump();

  agents_.resize(n);
  shards_.resize(num_shards);
  std::vector<std::uint32_t*> cursor(num_shards);
  {
    // Slice s holds positions {i : i mod S == s} of the state-major
    // order AgentSimulator uses, made contiguous: sizes differ by at
    // most one and every state's count stripes across the shards in
    // floor/ceil shares -- the proportional initial censuses the
    // mixing argument starts from. At S = 1 this is exactly the
    // state-major fill.
    std::size_t offset = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      Shard& shard = shards_[s];
      shard.size = n / num_shards + (s < n % num_shards ? 1 : 0);
      shard.base = agents_.data() + offset;
      cursor[s] = shard.base;
      shard.counts.assign(initial.size(), 0);
      shard.rng = util::Xoshiro256::stream(seed, s);
      offset += static_cast<std::size_t>(shard.size);
    }
  }
  {
    std::size_t dealt = 0;
    for (std::size_t q = 0; q < initial.size(); ++q) {
      for (core::Count k = 0; k < initial[q]; ++k) {
        Shard& shard = shards_[dealt % num_shards];
        *cursor[dealt % num_shards]++ = static_cast<std::uint32_t>(q);
        ++shard.counts[q];
        ++dealt;
      }
    }
  }
  refresh_global();

  unsigned workers = options.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, num_shards));
  threads_.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardedSimulator::~ShardedSimulator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardedSimulator::run_shard_batch(Shard& shard) {
  const std::uint64_t m = shard.size;
  if (m < 2) return;
  std::uint32_t* const slice = shard.base;
  std::uint64_t pi[kGroup];
  std::uint64_t pj[kGroup];
  std::uint64_t remaining = batch_;
  while (remaining > 0) {
    const std::uint64_t group = std::min(remaining, kGroup);
    for (std::uint64_t k = 0; k < group; ++k) {
      // The very draw sequence of AgentSimulator::step, restricted to
      // the slice -- at one shard the two chains consume the RNG
      // identically.
      const std::uint64_t i = shard.rng.below(m);
      std::uint64_t j = shard.rng.below(m - 1);
      if (j >= i) ++j;
      pi[k] = i;
      pj[k] = j;
      __builtin_prefetch(slice + i, 1);
      __builtin_prefetch(slice + j, 1);
    }
    for (std::uint64_t k = 0; k < group; ++k) {
      const PairRuleTable::Outcome* outcome =
          table_->rule(slice[pi[k]], slice[pj[k]]);
      if (outcome == nullptr) continue;
      --shard.counts[slice[pi[k]]];
      --shard.counts[slice[pj[k]]];
      ++shard.counts[outcome->first];
      ++shard.counts[outcome->second];
      slice[pi[k]] = outcome->first;
      slice[pj[k]] = outcome->second;
      ++shard.productive;
    }
    ++shard.batches;
    remaining -= group;
  }
  shard.draws += batch_;
}

void ShardedSimulator::drain_shards(unsigned worker) {
  const unsigned workers = num_workers();
  while (true) {
    const std::size_t s = next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (s >= shards_.size()) break;
    // Home assignment is round-robin; claiming someone else's shard is
    // the steal the sim.shard.steals counter reports.
    if (s % workers != worker) steals_.fetch_add(1, std::memory_order_relaxed);
    run_shard_batch(shards_[s]);
  }
}

void ShardedSimulator::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return shutdown_ || epoch_gen_ != seen; });
      if (shutdown_) return;
      seen = epoch_gen_;
    }
    drain_shards(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0) cv_done_.notify_one();
    }
  }
}

void ShardedSimulator::exchange() {
  const std::size_t num_shards = shards_.size();
  const std::uint64_t swaps =
      (static_cast<std::uint64_t>(num_shards) * batch_) >> exchange_shift_;
  struct Swap {
    std::uint32_t* a;
    std::uint32_t* b;
    std::size_t s;
    std::size_t t;
  };
  Swap plan[kGroup];
  std::uint64_t remaining = swaps;
  while (remaining > 0) {
    const std::uint64_t group = std::min(remaining, kGroup);
    std::uint64_t planned = 0;
    for (std::uint64_t k = 0; k < group; ++k) {
      const std::size_t s =
          static_cast<std::size_t>(exchange_rng_.below(num_shards));
      std::size_t t =
          static_cast<std::size_t>(exchange_rng_.below(num_shards - 1));
      if (t >= s) ++t;
      const std::uint64_t i = exchange_rng_.below(shards_[s].size);
      const std::uint64_t j = exchange_rng_.below(shards_[t].size);
      // Populations below the shard count leave empty slices; the
      // draws above still consume the stream deterministically.
      if (shards_[s].size == 0 || shards_[t].size == 0) continue;
      Swap& swap = plan[planned++];
      swap.a = shards_[s].base + i;
      swap.b = shards_[t].base + j;
      swap.s = s;
      swap.t = t;
      __builtin_prefetch(swap.a, 1);
      __builtin_prefetch(swap.b, 1);
    }
    for (std::uint64_t k = 0; k < planned; ++k) {
      const Swap& swap = plan[k];
      const std::uint32_t qa = *swap.a;
      const std::uint32_t qb = *swap.b;
      if (qa != qb) {
        *swap.a = qb;
        *swap.b = qa;
        --shards_[swap.s].counts[qa];
        ++shards_[swap.s].counts[qb];
        --shards_[swap.t].counts[qb];
        ++shards_[swap.t].counts[qa];
      }
    }
    remaining -= group;
  }
  cross_swaps_ += swaps;
}

void ShardedSimulator::refresh_global() {
  std::fill(counts_.begin(), counts_.end(), 0);
  steps_ = 0;
  interactions_ = 0;
  prefetch_batches_ = 0;
  for (const Shard& shard : shards_) {
    for (std::size_t q = 0; q < counts_.size(); ++q) {
      counts_[q] += shard.counts[q];
    }
    steps_ += shard.productive;
    interactions_ += shard.draws;
    prefetch_batches_ += shard.batches;
  }
  enabled_pairs_ = 0;
  for (std::size_t q = 0; q < counts_.size(); ++q) {
    // Counts each enabled ordered cell exactly once: cell (a, b) is
    // visited from row a only -- the same sum AgentSimulator maintains
    // incrementally, recomputed exactly at every barrier.
    for (std::uint32_t b : table_->partners(q)) {
      enabled_pairs_ += q == b ? counts_[q] * (counts_[q] - 1)
                               : counts_[q] * counts_[b];
    }
  }
}

bool ShardedSimulator::epoch() {
  if (enabled_pairs_ == 0) return false;
  ++epochs_;
  next_shard_.store(0, std::memory_order_relaxed);
  if (threads_.empty()) {
    for (Shard& shard : shards_) run_shard_batch(shard);
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++epoch_gen_;
      running_ = static_cast<unsigned>(threads_.size());
    }
    cv_work_.notify_all();
    drain_shards(0);
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_done_.wait(lock, [&] { return running_ == 0; });
    }
  }
  if (shards_.size() > 1) exchange();
  refresh_global();
  return enabled_pairs_ != 0;
}

std::uint64_t ShardedSimulator::run(std::uint64_t max_steps) {
  while (enabled_pairs_ != 0 && steps_ < max_steps) epoch();
  return steps_;
}

void ShardedSimulator::publish_metrics() const {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  if (!registry.enabled()) return;
  registry.add("sim.shard.runs", 1);
  registry.add("sim.shard.epochs", epochs_);
  registry.add("sim.shard.draws", interactions_);
  registry.add("sim.shard.productive", steps_);
  registry.add("sim.shard.batches", prefetch_batches_);
  registry.add("sim.shard.cross_swaps", cross_swaps_);
  registry.add("sim.shard.steals", steals());
}

}  // namespace sim
}  // namespace ppsc
