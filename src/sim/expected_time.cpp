#include "sim/expected_time.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "petri/config.h"
#include "petri/petri_net.h"
#include "petri/reachability.h"
#include "sim/weights.h"

namespace ppsc {
namespace sim {

namespace {

// Largest dense block the per-SCC Gaussian elimination will attempt;
// protocols whose chains have bigger strongly-connected pockets are
// reported uncomputed rather than silently slow.
constexpr std::size_t kMaxDenseComponent = 2048;

// Instantiation count of `t` in `config`: the product of binomials
// C(config[p], pre[p]), the same weight law both schedulers sample
// with (sim/weights.h holds the shared per-place factor).
long double instance_weight(const petri::Transition& t,
                            const petri::Config& config) {
  long double weight = 1.0L;
  for (std::size_t p = 0; p < config.size(); ++p) {
    const petri::Count need = t.pre[p];
    if (need == 0) continue;
    const long double factor =
        binomial_instances<long double>(config[p], need);
    if (factor == 0.0L) return 0.0L;
    weight *= factor;
  }
  return weight;
}

// Solves A x = b in place by Gaussian elimination with partial
// pivoting; returns false when a pivot falls below the singularity
// threshold relative to the matrix scale.
bool solve_dense(std::vector<std::vector<long double>>& a,
                 std::vector<long double>& b,
                 std::vector<long double>& x) {
  const std::size_t m = b.size();
  long double scale = 0.0L;
  for (const auto& row : a) {
    for (long double v : row) scale = std::max(scale, std::abs(v));
  }
  const long double threshold = 1e-12L * std::max(1.0L, scale);
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < m; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) <= threshold) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < m; ++row) {
      const long double factor = a[row][col] / a[col][col];
      if (factor == 0.0L) continue;
      for (std::size_t k = col; k < m; ++k) {
        a[row][k] -= factor * a[col][k];
      }
      b[row] -= factor * b[col];
    }
  }
  x.assign(m, 0.0L);
  for (std::size_t col = m; col-- > 0;) {
    long double sum = b[col];
    for (std::size_t k = col + 1; k < m; ++k) {
      sum -= a[col][k] * x[k];
    }
    x[col] = sum / a[col][col];
  }
  return true;
}

}  // namespace

ExpectedTimeResult expected_interactions_to_silence(
    const core::Protocol& protocol, const std::vector<core::Count>& input,
    std::size_t max_configs) {
  obs::ScopedTimer timer("expected_time");
  obs::ScopedSpan span("expected_time", "sim");
  ExpectedTimeResult result;
  // Every exit path reports the same summary counters; the lambda
  // keeps the early returns (truncated / oversized block / singular)
  // from silently skipping the publish.
  const auto publish = [&result]() {
    obs::MetricRegistry& registry = obs::MetricRegistry::global();
    if (!registry.enabled()) return;
    registry.add("expected_time.configs", result.reachable_configs);
    registry.add("expected_time.sccs", result.sccs);
    registry.add("expected_time.pivots", result.pivots);
    registry.add("expected_time.truncated", result.truncated ? 1 : 0);
    registry.add("expected_time.uncomputed", result.computed ? 0 : 1);
    if (result.largest_scc > 0) {
      registry.record("expected_time.largest_scc", result.largest_scc);
    }
  };
  const petri::PetriNet net(protocol.net());
  petri::ExploreLimits limits;
  limits.max_nodes = max_configs;
  const petri::ReachabilityGraph graph =
      petri::explore(net, {protocol.initial_config(input)}, limits);
  result.reachable_configs = graph.nodes.size();
  if (graph.truncated) {
    result.truncated = true;
    publish();
    return result;
  }

  const std::size_t n = graph.nodes.size();
  // Per-edge jump probabilities of the productive-step chain. The
  // graph is untruncated, so every enabled transition of every node
  // has its edge and the per-node weights sum to W(c).
  std::vector<std::vector<long double>> edge_probability(n);
  {
    obs::ScopedSpan weights_span("expected_time.weights", "sim");
    for (std::size_t i = 0; i < n; ++i) {
      long double total = 0.0L;
      edge_probability[i].reserve(graph.edges[i].size());
      for (const petri::ReachEdge& edge : graph.edges[i]) {
        const long double w =
            instance_weight(net.transition(edge.transition), graph.nodes[i]);
        edge_probability[i].push_back(w);
        total += w;
      }
      for (long double& p : edge_probability[i]) p /= total;
    }
  }

  const petri::SccDecomposition scc = [&graph] {
    obs::ScopedSpan scc_span("expected_time.scc", "sim");
    return petri::scc_decompose(graph);
  }();
  std::vector<std::vector<std::size_t>> members(scc.count);
  for (std::size_t i = 0; i < n; ++i) {
    members[scc.component[i]].push_back(i);
  }
  result.sccs = scc.count;
  for (const auto& component : members) {
    result.largest_scc = std::max(result.largest_scc, component.size());
  }

  // Tarjan numbers components in reverse topological order: every edge
  // leaving component c lands in a component with a smaller id, so a
  // single ascending pass sees all successors solved.
  std::vector<long double> expected(n, 0.0L);
  std::vector<std::size_t> local(n, 0);
  for (std::size_t c = 0; c < scc.count; ++c) {
    const std::vector<std::size_t>& nodes = members[c];
    if (nodes.size() == 1 && graph.edges[nodes[0]].empty()) {
      expected[nodes[0]] = 0.0L;  // silent, absorbing
      continue;
    }
    const std::size_t m = nodes.size();
    if (m > kMaxDenseComponent) {
      publish();
      return result;
    }
    // Solve spans only for nontrivial blocks: a chain can have tens of
    // thousands of singleton SCCs, and their "solves" are a few adds.
    std::optional<obs::ScopedSpan> solve_span;
    if (m >= 2) {
      solve_span.emplace("expected_time.solve", "sim");
      solve_span->arg("scc_size", m);
    }
    result.pivots += m;
    for (std::size_t li = 0; li < m; ++li) local[nodes[li]] = li;
    // Row li: E_i - sum_{j in C} p_ij E_j = 1 + sum_{j notin C} p_ij E_j.
    std::vector<std::vector<long double>> a(m,
                                            std::vector<long double>(m, 0.0L));
    std::vector<long double> b(m, 1.0L);
    for (std::size_t li = 0; li < m; ++li) {
      const std::size_t i = nodes[li];
      a[li][li] = 1.0L;
      for (std::size_t e = 0; e < graph.edges[i].size(); ++e) {
        const std::size_t j = graph.edges[i][e].target;
        const long double p = edge_probability[i][e];
        if (scc.component[j] == c) {
          a[li][local[j]] -= p;
        } else {
          assert(scc.component[j] < c);
          b[li] += p * expected[j];
        }
      }
    }
    std::vector<long double> x;
    if (!solve_dense(a, b, x)) {  // silence unreachable
      publish();
      return result;
    }
    for (std::size_t li = 0; li < m; ++li) expected[nodes[li]] = x[li];
  }

  result.computed = true;
  result.expected_steps = static_cast<double>(expected[0]);
  publish();
  return result;
}

}  // namespace sim
}  // namespace ppsc
