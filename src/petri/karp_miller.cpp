#include "petri/karp_miller.h"

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppsc {
namespace petri {

namespace {

bool omega_covers(const Config& a, const Config& b) {
  for (std::size_t p = 0; p < a.size(); ++p) {
    if (a[p] == kOmega) continue;
    if (b[p] == kOmega || a[p] < b[p]) return false;
  }
  return true;
}

bool omega_enabled(const Transition& t, const Config& m) {
  for (std::size_t p = 0; p < m.size(); ++p) {
    if (m[p] != kOmega && m[p] < t.pre[p]) return false;
  }
  return true;
}

Config omega_fire(const Transition& t, const Config& m) {
  Config next = m;
  for (std::size_t p = 0; p < m.size(); ++p) {
    if (next[p] != kOmega) next[p] += t.post[p] - t.pre[p];
  }
  return next;
}

}  // namespace

bool KarpMillerResult::covers(const Config& target) const {
  for (const KarpMillerNode& node : nodes) {
    if (omega_covers(node.marking, target)) return true;
  }
  return false;
}

std::vector<bool> KarpMillerResult::finite_places(std::size_t node) const {
  const Config& m = nodes[node].marking;
  std::vector<bool> keep(m.size());
  for (std::size_t p = 0; p < m.size(); ++p) keep[p] = m[p] != kOmega;
  return keep;
}

KarpMillerResult karp_miller(const PetriNet& net, const Config& root,
                             std::size_t max_nodes) {
  if (root.size() != net.num_states()) {
    throw std::invalid_argument("karp_miller: root dimension mismatch");
  }
  obs::ScopedTimer timer("karp_miller");
  obs::ScopedSpan span("karp_miller", "petri");
  std::uint64_t accelerations = 0;
  KarpMillerResult result;
  std::unordered_map<Config, std::size_t, ConfigHash> seen;
  result.nodes.push_back({root, KarpMillerResult::kNoParent, 0});
  seen.emplace(root, 0);
  constexpr std::size_t kChunkNodes = 1024;
  std::optional<obs::ScopedSpan> chunk_span;
  for (std::size_t head = 0; head < result.nodes.size(); ++head) {
    if (head % kChunkNodes == 0 && result.nodes.size() > kChunkNodes) {
      chunk_span.emplace("karp_miller.chunk", "petri");
      chunk_span->arg("head", head);
      chunk_span->arg("nodes", result.nodes.size());
    }
    for (std::size_t t = 0; t < net.num_transitions(); ++t) {
      const Transition& tr = net.transition(t);
      // Copy: nodes may reallocate while we append successors.
      // NOLINTNEXTLINE(performance-unnecessary-copy-initialization)
      const Config current = result.nodes[head].marking;
      if (!omega_enabled(tr, current)) continue;
      Config next = omega_fire(tr, current);
      // Accelerate against the ancestor chain until a fixpoint: each
      // strictly dominated ancestor promotes its strictly smaller
      // places to omega, which may unlock further ancestors.
      bool changed = true;
      while (changed) {
        changed = false;
        for (std::size_t at = head;; at = result.nodes[at].parent) {
          const Config& ancestor = result.nodes[at].marking;
          if (omega_covers(next, ancestor) && next != ancestor) {
            // Under omega_covers, every finite place of next is also
            // finite in the ancestor.
            for (std::size_t p = 0; p < next.size(); ++p) {
              if (next[p] != kOmega && ancestor[p] < next[p]) {
                next[p] = kOmega;
                ++accelerations;
                changed = true;
              }
            }
          }
          if (at == 0 || result.nodes[at].parent ==
                             KarpMillerResult::kNoParent) {
            break;
          }
        }
      }
      if (seen.count(next)) continue;
      if (result.nodes.size() >= max_nodes) {
        result.truncated = true;
        continue;
      }
      seen.emplace(next, result.nodes.size());
      result.nodes.push_back({std::move(next), head, t});
    }
  }
  chunk_span.reset();
  span.arg("nodes", result.nodes.size());
  span.arg("accelerations", accelerations);
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  if (registry.enabled()) {
    registry.add("karp_miller.nodes", result.nodes.size());
    registry.add("karp_miller.accelerations", accelerations);
    registry.add("karp_miller.truncated", result.truncated ? 1 : 0);
  }
  return result;
}

}  // namespace petri
}  // namespace ppsc
