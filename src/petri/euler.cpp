#include "petri/euler.h"

#include <algorithm>
#include <stdexcept>

namespace ppsc {
namespace petri {

std::optional<std::vector<std::size_t>> euler_circuit(
    std::size_t num_nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    const std::vector<std::uint64_t>& multiplicity, std::size_t start) {
  if (multiplicity.size() != edges.size()) {
    throw std::invalid_argument("euler_circuit: multiplicity size mismatch");
  }
  if (start >= num_nodes) {
    throw std::invalid_argument("euler_circuit: start out of range");
  }
  std::uint64_t total = 0;
  std::vector<std::int64_t> balance(num_nodes, 0);
  std::vector<std::vector<std::size_t>> out(num_nodes);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (edges[e].first >= num_nodes || edges[e].second >= num_nodes) {
      throw std::invalid_argument("euler_circuit: edge endpoint out of range");
    }
    if (multiplicity[e] == 0) continue;
    total += multiplicity[e];
    balance[edges[e].first] += static_cast<std::int64_t>(multiplicity[e]);
    balance[edges[e].second] -= static_cast<std::int64_t>(multiplicity[e]);
    out[edges[e].first].push_back(e);
  }
  for (std::int64_t b : balance) {
    if (b != 0) return std::nullopt;
  }
  if (total == 0) return std::vector<std::size_t>{};
  // Connectivity of the used edges from start (balance makes forward
  // reachability enough).
  std::vector<bool> visited(num_nodes, false);
  std::vector<std::size_t> stack{start};
  visited[start] = true;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t e : out[u]) {
      if (!visited[edges[e].second]) {
        visited[edges[e].second] = true;
        stack.push_back(edges[e].second);
      }
    }
  }
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (multiplicity[e] > 0 &&
        (!visited[edges[e].first] || !visited[edges[e].second])) {
      return std::nullopt;
    }
  }
  if (out[start].empty()) return std::nullopt;

  // Hierholzer with per-edge remaining counts.
  std::vector<std::uint64_t> remaining = multiplicity;
  std::vector<std::size_t> cursor(num_nodes, 0);
  std::vector<std::size_t> vertex_stack{start};
  std::vector<std::size_t> edge_stack;
  std::vector<std::size_t> walk;
  while (!vertex_stack.empty()) {
    const std::size_t u = vertex_stack.back();
    bool advanced = false;
    while (cursor[u] < out[u].size()) {
      const std::size_t e = out[u][cursor[u]];
      if (remaining[e] == 0) {
        ++cursor[u];
        continue;
      }
      --remaining[e];
      vertex_stack.push_back(edges[e].second);
      edge_stack.push_back(e);
      advanced = true;
      break;
    }
    if (!advanced) {
      vertex_stack.pop_back();
      if (!edge_stack.empty()) {
        walk.push_back(edge_stack.back());
        edge_stack.pop_back();
      }
    }
  }
  std::reverse(walk.begin(), walk.end());
  if (walk.size() != total) return std::nullopt;  // unreachable edges left
  return walk;
}

}  // namespace petri
}  // namespace ppsc
