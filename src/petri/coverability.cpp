#include "petri/coverability.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "petri/reachability.h"

namespace ppsc {
namespace petri {

namespace {

// Minimal marking that enables t and reaches >= m after firing it:
// componentwise max(pre_t, m - (post_t - pre_t)).
Config backward_step(const PetriNet& net, std::size_t t, const Config& m) {
  const Transition& tr = net.transition(t);
  Config pred(m.size());
  for (std::size_t p = 0; p < m.size(); ++p) {
    pred[p] = std::max(tr.pre[p], m[p] - (tr.post[p] - tr.pre[p]));
  }
  return pred;
}

bool dominated(const std::vector<Config>& basis, const Config& m,
               std::uint64_t& comparisons) {
  for (const Config& b : basis) {
    ++comparisons;
    if (m.covers(b)) return true;
  }
  return false;
}

}  // namespace

std::vector<Config> backward_basis(const PetriNet& net, const Config& target,
                                   std::size_t max_basis,
                                   BackwardBasisStats* stats) {
  if (target.size() != net.num_states()) {
    throw std::invalid_argument("backward_basis: target dimension mismatch");
  }
  obs::ScopedTimer timer("coverability");
  obs::ScopedSpan span("coverability", "petri");
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  const bool obs_on = registry.enabled();
  BackwardBasisStats local;
  std::vector<Config> basis{target};
  std::deque<Config> work{target};
  // Backward steps and dominance scans interleave per popped marking;
  // chunk spans window them so a trace shows the basis trajectory
  // (args carry the basis size at each window start) without
  // per-iteration events.
  constexpr std::uint64_t kChunkIterations = 512;
  std::optional<obs::ScopedSpan> chunk_span;
  while (!work.empty()) {
    const Config m = std::move(work.front());
    work.pop_front();
    if (local.iterations % kChunkIterations == 0 &&
        local.iterations + work.size() > kChunkIterations) {
      chunk_span.emplace("coverability.chunk", "petri");
      chunk_span->arg("iteration", local.iterations);
      chunk_span->arg("basis", basis.size());
    }
    ++local.iterations;
    local.basis_size_sum += basis.size();
    // The per-iteration basis trajectory is the e13 scaling story;
    // bucketing it is only worth the map lookup when someone watches.
    if (obs_on) registry.record("coverability.basis_size", basis.size());
    // m may have been pruned by a strictly smaller element meanwhile.
    bool alive = false;
    for (const Config& b : basis) {
      if (b == m) {
        alive = true;
        break;
      }
    }
    if (!alive) continue;
    for (std::size_t t = 0; t < net.num_transitions(); ++t) {
      Config pred = backward_step(net, t, m);
      ++local.predecessors;
      if (dominated(basis, pred, local.comparisons)) {
        ++local.pruned_dominated;
        continue;
      }
      const std::size_t before = basis.size();
      local.comparisons += before;
      basis.erase(std::remove_if(basis.begin(), basis.end(),
                                 [&pred](const Config& b) {
                                   return b.covers(pred);
                                 }),
                  basis.end());
      local.evictions += before - basis.size();
      basis.push_back(pred);
      local.basis_peak = std::max(local.basis_peak, basis.size());
      if (basis.size() > max_basis) {
        throw std::runtime_error("backward_basis: basis exceeds max_basis");
      }
      work.push_back(std::move(pred));
    }
  }
  chunk_span.reset();
  local.basis_final = basis.size();
  local.basis_peak = std::max(local.basis_peak, local.basis_final);
  span.arg("iterations", local.iterations);
  span.arg("basis_final", local.basis_final);
  if (obs_on) {
    registry.add("coverability.iterations", local.iterations);
    registry.add("coverability.predecessors", local.predecessors);
    registry.add("coverability.pruned_dominated", local.pruned_dominated);
    registry.add("coverability.evictions", local.evictions);
    registry.add("coverability.comparisons", local.comparisons);
    registry.record("coverability.basis_final", local.basis_final);
    registry.record("coverability.basis_peak", local.basis_peak);
  }
  if (stats != nullptr) *stats = local;
  return basis;
}

bool coverable(const PetriNet& net, const Config& source, const Config& target,
               std::size_t max_basis) {
  if (source.size() != net.num_states()) {
    throw std::invalid_argument("coverable: source dimension mismatch");
  }
  for (const Config& b : backward_basis(net, target, max_basis)) {
    if (source.covers(b)) return true;
  }
  return false;
}

CoveringWordResult shortest_covering_word(const PetriNet& net,
                                          const Config& source,
                                          const Config& target,
                                          std::size_t max_nodes) {
  if (source.size() != net.num_states() ||
      target.size() != net.num_states()) {
    throw std::invalid_argument(
        "shortest_covering_word: dimension mismatch");
  }
  CoveringWordResult result;
  obs::ScopedSpan span("coverability.word", "petri");
  // BFS discovery order makes the first covering node a shortest one.
  ExploreLimits limits;
  limits.max_nodes = max_nodes;
  const ReachabilityGraph graph =
      explore(net, {source}, limits,
              [&target](const Config& c) { return c.covers(target); });
  result.explored = graph.nodes.size();
  result.truncated = graph.truncated;
  result.stats = graph.stats;
  if (graph.stopped.has_value()) {
    result.word = graph.word_to(*graph.stopped);
  }
  span.arg("explored", result.explored);
  span.arg("found", graph.stopped.has_value() ? 1 : 0);
  return result;
}

}  // namespace petri
}  // namespace ppsc
