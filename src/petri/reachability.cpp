#include "petri/reachability.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppsc {
namespace petri {

std::optional<std::size_t> ReachabilityGraph::find(const Config& config) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == config) return i;
  }
  return std::nullopt;
}

std::vector<std::size_t> ReachabilityGraph::word_to(std::size_t node) const {
  std::vector<std::size_t> word;
  while (parent[node] != kNoParent) {
    word.push_back(parent_transition[node]);
    node = parent[node];
  }
  std::reverse(word.begin(), word.end());
  return word;
}

ReachabilityGraph explore(const PetriNet& net, const std::vector<Config>& roots,
                          const ExploreLimits& limits,
                          const std::function<bool(const Config&)>& stop) {
  obs::ScopedTimer timer("explore");
  obs::ScopedSpan span("explore", "petri");
  // Bucket scans re-hash the config, so collision accounting is only
  // collected when someone is watching.
  const bool count_collisions = obs::MetricRegistry::global().enabled();
  ReachabilityGraph graph;
  ExploreStats& stats = graph.stats;
  std::unordered_map<Config, std::size_t, ConfigHash> ids;
  const auto note_insertion = [&](const Config& config) {
    if (count_collisions) {
      stats.collisions += ids.bucket_size(ids.bucket(config)) - 1;
    }
  };
  {
    obs::ScopedSpan seed_span("explore.seed", "petri");
    for (const Config& root : roots) {
      if (root.size() != net.num_states()) {
        throw std::invalid_argument("explore: root dimension mismatch");
      }
      ++stats.probes;
      if (ids.count(root)) continue;
      ids.emplace(root, graph.nodes.size());
      note_insertion(root);
      graph.nodes.push_back(root);
      graph.edges.emplace_back();
      graph.parent.push_back(ReachabilityGraph::kNoParent);
      graph.parent_transition.push_back(0);
      if (!graph.stopped && stop && stop(root)) {
        graph.stopped = graph.nodes.size() - 1;
      }
    }
  }
  {
    obs::ScopedSpan frontier_span("explore.frontier", "petri");
    // Chunk spans slice the BFS into fixed node windows, so a Perfetto
    // view shows where the expansion slowed down (hash-table growth,
    // widening frontier) without per-node events.
    constexpr std::size_t kChunkNodes = 8192;
    std::optional<obs::ScopedSpan> chunk_span;
    for (std::size_t head = 0;
         head < graph.nodes.size() && !graph.stopped; ++head) {
      if (head % kChunkNodes == 0 && graph.nodes.size() > kChunkNodes) {
        chunk_span.emplace("explore.chunk", "petri");
        chunk_span->arg("head", head);
        chunk_span->arg("frontier", graph.nodes.size() - head);
      }
      stats.frontier_peak =
          std::max(stats.frontier_peak, graph.nodes.size() - head);
      // Copy: nodes may reallocate while we append successors.
      // NOLINTNEXTLINE(performance-unnecessary-copy-initialization)
      const Config current = graph.nodes[head];
      for (std::size_t t = 0; t < net.num_transitions(); ++t) {
        if (!net.enabled(t, current)) continue;
        Config next = net.fire(t, current);
        ++stats.probes;
        auto it = ids.find(next);
        if (it == ids.end()) {
          if (graph.nodes.size() >= limits.max_nodes) {
            graph.truncated = true;
            continue;
          }
          it = ids.emplace(std::move(next), graph.nodes.size()).first;
          note_insertion(it->first);
          graph.nodes.push_back(it->first);
          graph.edges.emplace_back();
          graph.parent.push_back(head);
          graph.parent_transition.push_back(t);
          if (stop && stop(it->first)) {
            graph.stopped = graph.nodes.size() - 1;
          }
        }
        graph.edges[head].push_back({it->second, t});
        ++stats.edges;
        if (graph.stopped) break;
      }
    }
  }
  stats.configs = graph.nodes.size();
  stats.truncated = graph.truncated;
  span.arg("configs", stats.configs);
  span.arg("edges", stats.edges);
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  if (registry.enabled()) {
    registry.add("explore.configs", stats.configs);
    registry.add("explore.edges", stats.edges);
    registry.add("explore.probes", stats.probes);
    registry.add("explore.collisions", stats.collisions);
    registry.add("explore.truncated", stats.truncated ? 1 : 0);
    registry.record("explore.frontier_peak", stats.frontier_peak);
  }
  return graph;
}

std::optional<Config> fire_word(const PetriNet& net, Config from,
                                const std::vector<std::size_t>& word) {
  for (std::size_t t : word) {
    if (t >= net.num_transitions() || !net.enabled(t, from)) {
      return std::nullopt;
    }
    from = net.fire(t, from);
  }
  return from;
}

SccDecomposition scc_decompose(const ReachabilityGraph& graph) {
  const std::size_t n = graph.nodes.size();
  const std::size_t kNone = static_cast<std::size_t>(-1);
  SccDecomposition out;
  out.component.assign(n, kNone);
  std::vector<std::size_t> index(n, kNone);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t node;
    std::size_t edge;
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kNone) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::size_t u = frame.node;
      if (frame.edge < graph.edges[u].size()) {
        const std::size_t v = graph.edges[u][frame.edge++].target;
        if (index[v] == kNone) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          call_stack.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            out.component[w] = out.count;
            if (w == u) break;
          }
          ++out.count;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const std::size_t up = call_stack.back().node;
          lowlink[up] = std::min(lowlink[up], lowlink[u]);
        }
      }
    }
  }
  out.bottom.assign(out.count, true);
  for (std::size_t u = 0; u < n; ++u) {
    for (const ReachEdge& e : graph.edges[u]) {
      if (out.component[u] != out.component[e.target]) {
        out.bottom[out.component[u]] = false;
      }
    }
  }
  return out;
}

}  // namespace petri
}  // namespace ppsc
