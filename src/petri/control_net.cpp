#include "petri/control_net.h"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <utility>

#include "petri/euler.h"

namespace ppsc {
namespace petri {

ControlStateNet ControlStateNet::from_component(
    const PetriNet& net, const std::vector<Config>& members,
    const std::vector<bool>& q_mask) {
  if (q_mask.size() != net.num_states()) {
    throw std::invalid_argument(
        "ControlStateNet::from_component: mask dimension mismatch");
  }
  std::vector<bool> complement(q_mask.size());
  for (std::size_t p = 0; p < q_mask.size(); ++p) complement[p] = !q_mask[p];
  ControlStateNet cnet(net.project(complement), members.size());

  std::map<std::vector<Count>, std::size_t> index;
  for (std::size_t m = 0; m < members.size(); ++m) {
    index.emplace(members[m].raw(), m);
  }
  for (std::size_t m = 0; m < members.size(); ++m) {
    for (std::size_t t = 0; t < net.num_transitions(); ++t) {
      const auto target = projected_step(net.transition(t), q_mask, members[m]);
      if (!target.has_value()) continue;
      auto it = index.find(target->raw());
      if (it == index.end()) continue;
      cnet.add_edge(m, t, it->second);
    }
  }
  return cnet;
}

void ControlStateNet::add_edge(std::size_t from, std::size_t transition,
                               std::size_t to) {
  if (from >= num_controls_ || to >= num_controls_) {
    throw std::invalid_argument("ControlStateNet::add_edge: control range");
  }
  if (transition >= net_.num_transitions()) {
    throw std::invalid_argument("ControlStateNet::add_edge: transition range");
  }
  edges_.push_back({from, transition, to});
}

namespace {

std::vector<bool> reachable_from(
    std::size_t start, std::size_t n,
    const std::vector<ControlStateNet::Edge>& edges, bool reversed) {
  std::vector<bool> seen(n, false);
  seen[start] = true;
  std::vector<std::size_t> stack{start};
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (const auto& e : edges) {
      const std::size_t from = reversed ? e.to : e.from;
      const std::size_t to = reversed ? e.from : e.to;
      if (from == u && !seen[to]) {
        seen[to] = true;
        stack.push_back(to);
      }
    }
  }
  return seen;
}

}  // namespace

bool ControlStateNet::strongly_connected() const {
  if (num_controls_ <= 1) return true;
  const std::vector<bool> fwd = reachable_from(0, num_controls_, edges_, false);
  const std::vector<bool> bwd = reachable_from(0, num_controls_, edges_, true);
  for (std::size_t s = 0; s < num_controls_; ++s) {
    if (!fwd[s] || !bwd[s]) return false;
  }
  return true;
}

std::optional<std::vector<std::size_t>> ControlStateNet::total_cycle(
    std::size_t anchor) const {
  if (anchor >= num_controls_ || edges_.empty() || !strongly_connected()) {
    return std::nullopt;
  }
  // BFS shortest edge-paths between all control pairs (graphs here are
  // tiny; |S| rounds of BFS are plenty).
  std::vector<std::vector<std::size_t>> out(num_controls_);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    out[edges_[e].from].push_back(e);
  }
  const std::size_t kNone = static_cast<std::size_t>(-1);
  auto shortest_path = [&](std::size_t from,
                           std::size_t to) -> std::vector<std::size_t> {
    std::vector<std::size_t> via(num_controls_, kNone);  // edge into node
    std::vector<std::size_t> prev(num_controls_, kNone);
    std::vector<bool> seen(num_controls_, false);
    std::deque<std::size_t> queue{from};
    seen[from] = true;
    while (!queue.empty() && !seen[to]) {
      const std::size_t u = queue.front();
      queue.pop_front();
      for (std::size_t e : out[u]) {
        const std::size_t v = edges_[e].to;
        if (seen[v]) continue;
        seen[v] = true;
        via[v] = e;
        prev[v] = u;
        queue.push_back(v);
      }
    }
    std::vector<std::size_t> path;
    for (std::size_t at = to; at != from; at = prev[at]) {
      path.push_back(via[at]);
    }
    std::reverse(path.begin(), path.end());
    return path;
  };

  // One simple cycle per edge: the edge, then a shortest path back to
  // its tail -- at most |S| edges each, so the multiset has at most
  // |E| * |S| edge instances.
  std::vector<std::uint64_t> multiplicity(edges_.size(), 0);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    ++multiplicity[e];
    for (std::size_t back : shortest_path(edges_[e].to, edges_[e].from)) {
      ++multiplicity[back];
    }
  }
  std::vector<std::pair<std::size_t, std::size_t>> endpoint_list;
  endpoint_list.reserve(edges_.size());
  for (const Edge& e : edges_) endpoint_list.emplace_back(e.from, e.to);
  return euler_circuit(num_controls_, endpoint_list, multiplicity, anchor);
}

std::vector<std::uint64_t> ControlStateNet::parikh(
    const std::vector<std::size_t>& walk) const {
  std::vector<std::uint64_t> counts(edges_.size(), 0);
  for (std::size_t e : walk) {
    if (e >= edges_.size()) {
      throw std::invalid_argument("ControlStateNet::parikh: edge range");
    }
    ++counts[e];
  }
  return counts;
}

bool ControlStateNet::is_cycle(const std::vector<std::size_t>& walk,
                               std::size_t anchor) const {
  if (walk.empty()) return true;
  std::size_t at = anchor;
  for (std::size_t e : walk) {
    if (e >= edges_.size() || edges_[e].from != at) return false;
    at = edges_[e].to;
  }
  return at == anchor;
}

std::vector<Count> ControlStateNet::displacement(
    const std::vector<std::uint64_t>& edge_counts) const {
  if (edge_counts.size() != edges_.size()) {
    throw std::invalid_argument("ControlStateNet::displacement: size");
  }
  std::vector<Count> delta(net_.num_states(), 0);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (edge_counts[e] == 0) continue;
    const Transition& tr = net_.transition(edges_[e].transition);
    for (std::size_t p = 0; p < delta.size(); ++p) {
      delta[p] += static_cast<Count>(edge_counts[e]) * (tr.post[p] - tr.pre[p]);
    }
  }
  return delta;
}

}  // namespace petri
}  // namespace ppsc
