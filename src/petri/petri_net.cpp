#include "petri/petri_net.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ppsc {
namespace petri {

PetriNet::PetriNet(const core::PetriNet& net)
    : num_states_(net.num_places()) {
  for (const core::Transition& t : net.transitions()) {
    add(Config(t.pre), Config(t.post));
  }
}

void PetriNet::add(Config pre, Config post) {
  if (pre.size() != num_states_ || post.size() != num_states_) {
    throw std::invalid_argument("PetriNet::add: dimension mismatch");
  }
  for (std::size_t p = 0; p < num_states_; ++p) {
    if (pre[p] < 0 || post[p] < 0) {
      throw std::invalid_argument("PetriNet::add: negative count");
    }
  }
  transitions_.push_back({std::move(pre), std::move(post)});
}

Count PetriNet::norm_inf() const {
  Count norm = 0;
  for (const Transition& t : transitions_) {
    norm = std::max({norm, t.pre.norm_inf(), t.post.norm_inf()});
  }
  return norm;
}

Count PetriNet::max_width() const {
  Count width = 0;
  for (const Transition& t : transitions_) {
    width = std::max(width, t.width());
  }
  return width;
}

bool PetriNet::enabled(std::size_t t, const Config& config) const {
  return config.covers(transitions_[t].pre);
}

Config PetriNet::fire(std::size_t t, const Config& config) const {
  const Transition& tr = transitions_[t];
  Config next = config;
  for (std::size_t p = 0; p < num_states_; ++p) {
    next[p] += tr.post[p] - tr.pre[p];
  }
  return next;
}

PetriNet PetriNet::restrict(const std::vector<bool>& keep) const {
  if (keep.size() != num_states_) {
    throw std::invalid_argument("PetriNet::restrict: mask dimension mismatch");
  }
  std::size_t kept = 0;
  for (bool k : keep) kept += k ? 1 : 0;
  PetriNet out(kept);
  for (const Transition& t : transitions_) {
    bool supported = true;
    for (std::size_t p = 0; p < num_states_; ++p) {
      if (!keep[p] && (t.pre[p] != 0 || t.post[p] != 0)) {
        supported = false;
        break;
      }
    }
    if (supported) out.add(t.pre.restrict(keep), t.post.restrict(keep));
  }
  return out;
}

std::optional<Config> projected_step(const Transition& t,
                                     const std::vector<bool>& keep,
                                     const Config& marking) {
  const Config q_pre = t.pre.restrict(keep);
  if (!marking.covers(q_pre)) return std::nullopt;
  const Config q_post = t.post.restrict(keep);
  Config next = marking;
  for (std::size_t p = 0; p < next.size(); ++p) {
    next[p] += q_post[p] - q_pre[p];
  }
  return next;
}

PetriNet PetriNet::project(const std::vector<bool>& keep) const {
  if (keep.size() != num_states_) {
    throw std::invalid_argument("PetriNet::project: mask dimension mismatch");
  }
  std::size_t kept = 0;
  for (bool k : keep) kept += k ? 1 : 0;
  PetriNet out(kept);
  for (const Transition& t : transitions_) {
    out.add(t.pre.restrict(keep), t.post.restrict(keep));
  }
  return out;
}

}  // namespace petri
}  // namespace ppsc
