#include "petri/config.h"

#include <algorithm>
#include <stdexcept>

namespace ppsc {
namespace petri {

Config Config::unit(std::size_t dimension, std::size_t place, Count count) {
  if (place >= dimension) {
    throw std::invalid_argument("Config::unit: place out of range");
  }
  Config config(dimension);
  config[place] = count;
  return config;
}

Count Config::norm_inf() const {
  Count norm = 0;
  for (Count k : counts_) norm = std::max(norm, k);
  return norm;
}

Count Config::total() const {
  Count sum = 0;
  for (Count k : counts_) sum += k;
  return sum;
}

bool Config::covers(const Config& other) const {
  if (counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Config::covers: dimension mismatch");
  }
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    if (counts_[p] < other.counts_[p]) return false;
  }
  return true;
}

Config Config::restrict(const std::vector<bool>& keep) const {
  if (keep.size() != counts_.size()) {
    throw std::invalid_argument("Config::restrict: mask dimension mismatch");
  }
  Config out;
  out.counts_.reserve(counts_.size());
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    if (keep[p]) out.counts_.push_back(counts_[p]);
  }
  return out;
}

}  // namespace petri
}  // namespace ppsc
