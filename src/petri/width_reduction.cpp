#include "petri/width_reduction.h"

#include <stdexcept>
#include <utility>

namespace ppsc {
namespace petri {

Config WidthReduction::embed(const Config& original) const {
  if (original.size() != original_places) {
    throw std::invalid_argument("WidthReduction::embed: dimension mismatch");
  }
  Config out(compiled.num_states());
  for (std::size_t p = 0; p < original_places; ++p) out[p] = original[p];
  return out;
}

Config WidthReduction::project(const Config& compiled_config) const {
  if (compiled_config.size() != compiled.num_states()) {
    throw std::invalid_argument("WidthReduction::project: dimension mismatch");
  }
  Config out(original_places);
  for (std::size_t p = 0; p < original_places; ++p) {
    out[p] = compiled_config[p];
  }
  return out;
}

Config WidthReduction::cleanup(const Config& compiled_config) const {
  if (compiled_config.size() != compiled.num_states()) {
    throw std::invalid_argument("WidthReduction::cleanup: dimension mismatch");
  }
  Config out = compiled_config;
  for (std::size_t c = 0; c < collector_contents.size(); ++c) {
    const std::size_t place = original_places + c;
    const Count held = out[place];
    if (held == 0) continue;
    for (std::size_t p = 0; p < original_places; ++p) {
      out[p] += held * collector_contents[c][p];
    }
    out[place] = 0;
  }
  return out;
}

WidthReduction widen_to_width2(const PetriNet& net) {
  const std::size_t d = net.num_states();
  // First pass: count collector places so the compiled dimension is
  // known before any transition is emitted.
  std::size_t collectors = 0;
  for (const Transition& t : net.transitions()) {
    const Count w = t.width();
    if (w > 2) collectors += static_cast<std::size_t>(w) - 2;
  }
  const std::size_t compiled_dim = d + collectors;

  WidthReduction reduction;
  reduction.compiled = PetriNet(compiled_dim);
  reduction.original_places = d;

  auto lift = [&](const Config& original) {
    Config out(compiled_dim);
    for (std::size_t p = 0; p < d; ++p) out[p] = original[p];
    return out;
  };

  std::size_t next_collector = d;
  for (const Transition& t : net.transitions()) {
    const Count w = t.width();
    if (w <= 2) {
      reduction.compiled.add(lift(t.pre), lift(t.post));
      continue;
    }
    // The pre-multiset as a token list, increasing place order.
    std::vector<std::size_t> tokens;
    for (std::size_t p = 0; p < d; ++p) {
      for (Count k = 0; k < t.pre[p]; ++k) tokens.push_back(p);
    }
    // Gather steps: tokens[0]+tokens[1] -> a, a+tokens[i] -> a', and
    // the last collector releases the full post.
    std::size_t held = 0;  // current collector place, once gathering
    Config held_contents(d);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      Config pre(compiled_dim);
      if (i == 1) {
        pre[tokens[0]] += 1;
        pre[tokens[1]] += 1;
        held_contents[tokens[0]] += 1;
        held_contents[tokens[1]] += 1;
      } else {
        pre[held] += 1;
        pre[tokens[i]] += 1;
        held_contents[tokens[i]] += 1;
      }
      if (i + 1 < tokens.size()) {
        const std::size_t collector = next_collector++;
        reduction.collector_contents.push_back(held_contents);
        Config post(compiled_dim);
        post[collector] = 1;
        reduction.compiled.add(std::move(pre), std::move(post));
        held = collector;
      } else {
        reduction.compiled.add(std::move(pre), lift(t.post));
      }
    }
  }
  return reduction;
}

}  // namespace petri
}  // namespace ppsc
