#include "petri/bottom.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "petri/karp_miller.h"

namespace ppsc {
namespace petri {

namespace {

// How many explored markings find_bottom_witness tries as alpha, per
// candidate omega-set, before giving up (each try runs a bounded pump
// search); the witnesses of interest sit close to rho.
constexpr std::size_t kMaxAlphaCandidates = 64;

// The component of alpha|Q must also be closed under the Q-projection
// of every transition (the dynamics with omega tokens outside Q).
bool closed_under_projection(const PetriNet& net,
                             const std::vector<bool>& q_mask,
                             const std::vector<Config>& members) {
  std::set<std::vector<Count>> member_set;
  for (const Config& m : members) member_set.insert(m.raw());
  for (const Config& m : members) {
    for (std::size_t t = 0; t < net.num_transitions(); ++t) {
      const auto next = projected_step(net.transition(t), q_mask, m);
      if (next.has_value() && !member_set.count(next->raw())) return false;
    }
  }
  return true;
}

// Bounded BFS from alpha for beta with beta >= alpha, equal exactly on
// Q; returns the word alpha --w--> beta.
bool is_pump_of(const Config& beta, const Config& alpha,
                const std::vector<bool>& q_mask) {
  if (!beta.covers(alpha)) return false;
  for (std::size_t p = 0; p < beta.size(); ++p) {
    const bool grew = beta[p] > alpha[p];
    if (grew == q_mask[p]) return false;
  }
  return true;
}

std::optional<std::pair<std::vector<std::size_t>, Config>> find_pump(
    const PetriNet& net, const Config& alpha, const std::vector<bool>& q_mask,
    const ExploreLimits& limits) {
  // BFS with early exit: the first marking >= alpha that grew exactly
  // outside Q ends the search (and BFS makes its word a shortest one).
  const ReachabilityGraph graph = explore(
      net, {alpha}, limits,
      [&](const Config& c) { return is_pump_of(c, alpha, q_mask); });
  if (!graph.stopped.has_value()) return std::nullopt;
  return std::make_pair(graph.word_to(*graph.stopped),
                        graph.nodes[*graph.stopped]);
}

// Validates alpha as a bottom configuration for the given Q; fills in
// w, beta and the component when it is one.
bool complete_witness(const PetriNet& net, const Config& alpha,
                      const std::vector<bool>& q_mask,
                      const ExploreLimits& limits, BottomWitness* witness) {
  bool all_bounded = true;
  for (bool in_q : q_mask) all_bounded = all_bounded && in_q;
  if (all_bounded) {
    witness->w.clear();
    witness->beta = alpha;
  } else {
    auto pump = find_pump(net, alpha, q_mask, limits);
    if (!pump.has_value()) return false;
    witness->w = std::move(pump->first);
    witness->beta = std::move(pump->second);
  }
  const Component component =
      component_of(net.restrict(q_mask), alpha.restrict(q_mask), limits);
  if (!component.closed) return false;
  if (!closed_under_projection(net, q_mask, component.members)) return false;
  witness->q_mask = q_mask;
  witness->alpha = alpha;
  witness->component_size = component.members.size();
  return true;
}

}  // namespace

Component component_of(const PetriNet& net, const Config& from,
                       const ExploreLimits& limits) {
  if (from.size() != net.num_states()) {
    throw std::invalid_argument("component_of: dimension mismatch");
  }
  Component component;
  const ReachabilityGraph graph = explore(net, {from}, limits);
  const SccDecomposition scc = scc_decompose(graph);
  const std::size_t home = scc.component[0];
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    if (scc.component[i] == home) component.members.push_back(graph.nodes[i]);
  }
  component.closed = !graph.truncated && scc.bottom[home];
  return component;
}

std::optional<BottomWitness> find_bottom_witness(const PetriNet& net,
                                                 const Config& rho,
                                                 const ExploreLimits& limits) {
  if (rho.size() != net.num_states()) {
    throw std::invalid_argument("find_bottom_witness: dimension mismatch");
  }
  const ReachabilityGraph graph = explore(net, {rho}, limits);

  if (!graph.truncated) {
    // Finite case: the first explored member of any bottom SCC is a
    // bottom configuration with Q = all places and an empty pump.
    const SccDecomposition scc = scc_decompose(graph);
    for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
      if (!scc.bottom[scc.component[i]]) continue;
      BottomWitness witness;
      witness.sigma = graph.word_to(i);
      if (!complete_witness(net, graph.nodes[i],
                            std::vector<bool>(net.num_states(), true), limits,
                            &witness)) {
        continue;
      }
      return witness;
    }
    return std::nullopt;
  }

  // Pumping case: candidate Q sets are complements of the omega-sets
  // Karp-Miller discovers, largest omega-sets (deepest pumping) first.
  const KarpMillerResult km = karp_miller(net, rho, limits.max_nodes);
  std::vector<std::vector<bool>> candidates;
  for (std::size_t n = 0; n < km.nodes.size(); ++n) {
    std::vector<bool> keep = km.finite_places(n);
    if (std::find(keep.begin(), keep.end(), false) == keep.end()) continue;
    if (std::find(candidates.begin(), candidates.end(), keep) ==
        candidates.end()) {
      candidates.push_back(std::move(keep));
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const std::vector<bool>& a, const std::vector<bool>& b) {
                     return std::count(a.begin(), a.end(), false) >
                            std::count(b.begin(), b.end(), false);
                   });
  for (const std::vector<bool>& q_mask : candidates) {
    const std::size_t tries =
        std::min(graph.nodes.size(), kMaxAlphaCandidates);
    for (std::size_t i = 0; i < tries; ++i) {
      BottomWitness witness;
      witness.sigma = graph.word_to(i);
      if (complete_witness(net, graph.nodes[i], q_mask, limits, &witness)) {
        return witness;
      }
    }
  }
  return std::nullopt;
}

bool check_bottom_witness(const PetriNet& net, const Config& rho,
                          const BottomWitness& witness,
                          const ExploreLimits& limits) {
  if (witness.q_mask.size() != net.num_states()) return false;
  const std::optional<Config> alpha = fire_word(net, rho, witness.sigma);
  if (!alpha.has_value() || *alpha != witness.alpha) return false;
  const std::optional<Config> beta = fire_word(net, *alpha, witness.w);
  if (!beta.has_value() || *beta != witness.beta) return false;
  if (!beta->covers(*alpha)) return false;
  for (std::size_t p = 0; p < beta->size(); ++p) {
    const bool grew = (*beta)[p] > (*alpha)[p];
    if (grew == witness.q_mask[p]) return false;
  }
  const Component component = component_of(
      net.restrict(witness.q_mask), alpha->restrict(witness.q_mask), limits);
  if (!component.closed) return false;
  if (component.members.size() != witness.component_size) return false;
  return closed_under_projection(net, witness.q_mask, component.members);
}

}  // namespace petri
}  // namespace ppsc
