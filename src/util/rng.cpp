#include "util/rng.h"

namespace ppsc {
namespace util {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, the recommended seeder for xoshiro.
std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  for (auto& word : state_) word = splitmix(seed);
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift with rejection.
  while (true) {
    const std::uint64_t x = next();
    const unsigned __int128 product =
        static_cast<unsigned __int128>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(product);
    if (low >= (0ull - bound) % bound) {
      return static_cast<std::uint64_t>(product >> 64);
    }
  }
}

double Xoshiro256::unit() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

namespace {

// Shared polynomial-jump driver: xors together the states reached at
// the bit positions of the jump polynomial while stepping the
// generator, landing 2^128 (jump) or 2^192 (long_jump) draws ahead.
template <typename Step>
void apply_jump(std::uint64_t (&state)[4], const std::uint64_t (&poly)[4],
                Step step) {
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : poly) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ull << bit)) {
        s0 ^= state[0];
        s1 ^= state[1];
        s2 ^= state[2];
        s3 ^= state[3];
      }
      step();
    }
  }
  state[0] = s0;
  state[1] = s1;
  state[2] = s2;
  state[3] = s3;
}

}  // namespace

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[4] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
      0x39abdc4529b1661cull};
  apply_jump(state_, kJump, [this] { next(); });
}

void Xoshiro256::long_jump() {
  static constexpr std::uint64_t kLongJump[4] = {
      0x76e15d3efefdcbbfull, 0xc5004e441c522fb3ull, 0x77710069854ee241ull,
      0x39109bb02acbe635ull};
  apply_jump(state_, kLongJump, [this] { next(); });
}

Xoshiro256 Xoshiro256::stream(std::uint64_t seed, std::uint64_t index) {
  Xoshiro256 rng(seed);
  for (std::uint64_t k = 0; k < index; ++k) rng.jump();
  return rng;
}

}  // namespace util
}  // namespace ppsc
