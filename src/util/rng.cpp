#include "util/rng.h"

namespace ppsc {
namespace util {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, the recommended seeder for xoshiro.
std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  for (auto& word : state_) word = splitmix(seed);
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift with rejection.
  while (true) {
    const std::uint64_t x = next();
    const unsigned __int128 product =
        static_cast<unsigned __int128>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(product);
    if (low >= (0ull - bound) % bound) {
      return static_cast<std::uint64_t>(product >> 64);
    }
  }
}

double Xoshiro256::unit() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace util
}  // namespace ppsc
