#include "util/table.h"

#include <cstdio>
#include <stdexcept>

namespace ppsc {
namespace util {

std::string format_double(double value, int significant) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", significant, value);
  return buffer;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("TablePrinter: row wider than header");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size()) {
        out.append(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  emit(headers_);
  std::size_t rule_width = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_width += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_width, '-');
  out += '\n';
  for (const auto& row : rows_) emit(row);
  return out;
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace util
}  // namespace ppsc
