#include "bounds/formulas.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppsc {
namespace bounds {

double corollary44_lower_bound(double log2_n, double m, double h) {
  if (log2_n <= 1.0 || m <= 0.0) return 0.0;
  return std::pow(std::log2(log2_n), h) / m;
}

long long theorem43_min_states(double log2_n, double m) {
  if (m < 2.0) {
    throw std::invalid_argument("theorem43_min_states: need m >= 2");
  }
  if (log2_n <= 1.0) return 1;
  // Invert m^(d^2) >= log2 n in log space: d >= sqrt(log2 log2 n / log2 m).
  const double d = std::sqrt(std::log2(log2_n) / std::log2(m));
  const double rounded = std::ceil(d - 1e-9);
  return std::max(1ll, static_cast<long long>(rounded));
}

BigUint theorem43_bound(long long w, long long L, long long d) {
  if (w < 1 || L < 0 || d < 1) {
    throw std::invalid_argument("theorem43_bound: need w >= 1, L >= 0, d >= 1");
  }
  const std::uint64_t m =
      static_cast<std::uint64_t>(std::max({2ll, w, L}));
  const std::uint64_t dd = static_cast<std::uint64_t>(d);
  // m^(d^2) as the exponent of 2; overflow is caught by two_pow's cap.
  std::uint64_t exponent = 1;
  for (std::uint64_t i = 0; i < dd * dd; ++i) {
    if (exponent > (1ull << 27) / m + 1) {
      throw std::overflow_error("theorem43_bound: bound too large");
    }
    exponent *= m;
  }
  return BigUint::two_pow(exponent);
}

double log2_theorem43_bound(double w, double L, double d) {
  const double m = std::max({2.0, w, L});
  return std::pow(m, d * d);
}

double bej_loglog_states(double log2_n) {
  if (log2_n <= 1.0) return 0.0;
  return std::log2(log2_n);
}

double bej_log_states(double log2_n) { return log2_n; }

double log2_rackoff_bound(double r, double t, double d) {
  return std::pow(d, d) * std::log2(r + t + 2.0);
}

double log2_lemma54_h(std::uint64_t norm_t, std::size_t d) {
  if (norm_t == 0) return 0.0;
  const double t = static_cast<double>(norm_t);
  return std::log2(t) + std::pow(static_cast<double>(d),
                                 static_cast<double>(d)) *
                            std::log2(1.0 + t);
}

double log2_theorem61_b(double t, double r, double d) {
  return std::pow(d + 1.0, d + 1.0) * std::log2(t + r + 2.0);
}

}  // namespace bounds
}  // namespace ppsc
