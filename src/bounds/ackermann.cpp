#include "bounds/ackermann.h"

#include <cmath>

namespace ppsc {
namespace bounds {

int inverse_ackermann_log2(double log2_n) {
  // Largest k with A(k) <= n, clamped to at least 1 (the trivial bound).
  if (log2_n < std::log2(7.0)) return 1;
  if (log2_n < std::log2(61.0)) return 2;
  // The next level starts at A(4), whose log2 is about 2^65536 -- beyond
  // any finite double, hence the bound is 3 for every representable n.
  return 3;
}

}  // namespace bounds
}  // namespace ppsc
