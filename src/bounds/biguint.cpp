#include "bounds/biguint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ppsc {
namespace bounds {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}

BigUint::BigUint(std::uint64_t value) {
  while (value > 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value & 0xffffffffull));
    value >>= 32;
  }
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::two_pow(std::uint64_t exponent) {
  if (exponent > (1ull << 27)) {
    // ~16 MiB of limbs; anything larger is a formula bug, not a number
    // we should try to materialize.
    throw std::overflow_error("BigUint::two_pow: exponent too large");
  }
  BigUint result;
  result.limbs_.assign(static_cast<std::size_t>(exponent / 32) + 1, 0);
  result.limbs_.back() = 1u << (exponent % 32);
  return result;
}

BigUint BigUint::pow(std::uint64_t base, std::uint64_t exponent) {
  BigUint result(1);
  BigUint factor(base);
  while (exponent > 0) {
    if (exponent & 1) result *= factor;
    factor *= factor;
    exponent >>= 1;
  }
  return result;
}

BigUint& BigUint::operator*=(const BigUint& other) {
  *this = *this * other;
  return *this;
}

BigUint BigUint::operator*(const BigUint& other) const {
  if (is_zero() || other.is_zero()) return BigUint();
  BigUint result;
  result.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(limbs_[i]) *
                              other.limbs_[j] +
                          result.limbs_[i + j] + carry;
      result.limbs_[i + j] = static_cast<std::uint32_t>(cur % kBase);
      carry = cur / kBase;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry > 0) {
      std::uint64_t cur = result.limbs_[k] + carry;
      result.limbs_[k] = static_cast<std::uint32_t>(cur % kBase);
      carry = cur / kBase;
      ++k;
    }
  }
  result.trim();
  return result;
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top > 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::size_t BigUint::digits10() const {
  return to_string().size();
}

double BigUint::log2() const {
  if (limbs_.empty()) return -std::numeric_limits<double>::infinity();
  // The top two limbs carry more precision than a double can hold.
  const std::size_t n = limbs_.size();
  const std::size_t use = n < 2 ? n : 2;
  double mantissa = 0.0;
  for (std::size_t i = 0; i < use; ++i) {
    mantissa = mantissa * 4294967296.0 + static_cast<double>(limbs_[n - 1 - i]);
  }
  return std::log2(mantissa) + 32.0 * static_cast<double>(n - use);
}

std::string BigUint::to_string() const {
  if (limbs_.empty()) return "0";
  // Repeatedly divide by 10^9, collecting low-order decimal chunks.
  std::vector<std::uint32_t> work(limbs_.rbegin(), limbs_.rend());
  std::string digits;
  while (!work.empty()) {
    std::uint64_t remainder = 0;
    std::vector<std::uint32_t> quotient;
    quotient.reserve(work.size());
    for (std::uint32_t limb : work) {
      std::uint64_t cur = (remainder << 32) | limb;
      quotient.push_back(static_cast<std::uint32_t>(cur / 1000000000ull));
      remainder = cur % 1000000000ull;
    }
    while (!quotient.empty() && quotient.front() == 0) {
      quotient.erase(quotient.begin());
    }
    std::string chunk = std::to_string(remainder);
    if (!quotient.empty()) {
      chunk.insert(0, 9 - chunk.size(), '0');
    }
    digits.insert(0, chunk);
    work = std::move(quotient);
  }
  return digits;
}

}  // namespace bounds
}  // namespace ppsc
