// E4 — Lemma 5.3 (Rackoff): shortest covering sequences vs the bound
// (‖ρ‖∞ + ‖T‖∞ + 2)^(|P|^|P|) (the numeric convention pinned in
// bounds/formulas.h).
//
// On randomized nets of dimension 2..4 we compute exact shortest covering
// words by forward BFS and compare the worst observed length against the
// bound (in log2 space; the bound is astronomically loose, as expected of a
// Rackoff-style argument — the point is that it is never violated).

#include <cmath>
#include <cstdio>

#include "bounds/formulas.h"
#include "petri/coverability.h"
#include "report.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  ppsc::bench::Report report("e4_rackoff");
  using ppsc::petri::Config;
  using ppsc::petri::Count;
  using ppsc::petri::PetriNet;

  std::printf("E4: shortest covering words vs Rackoff's bound (Lemma 5.3)\n\n");
  ppsc::util::TablePrinter table({"d", "nets", "coverable", "max |sigma|",
                                  "log2 max", "log2 bound", "holds"});

  ppsc::util::Xoshiro256 rng(2022);
  for (std::size_t d = 2; d <= 4; ++d) {
    std::size_t coverable_count = 0;
    std::size_t longest = 0;
    Count worst_norm_rho = 1;
    Count worst_norm_t = 1;
    const int kNets = 60;
    report.add_items(kNets);
    for (int i = 0; i < kNets; ++i) {
      PetriNet net(d);
      const int transitions = 2 + static_cast<int>(rng.below(3));
      for (int t = 0; t < transitions; ++t) {
        Config pre(d), post(d);
        for (std::size_t s = 0; s < d; ++s) {
          pre[s] = static_cast<Count>(rng.below(3));
          post[s] = static_cast<Count>(rng.below(3));
        }
        if (pre == post) post[rng.below(d)] += 1;
        net.add(pre, post);
      }
      Config source(d), target(d);
      for (std::size_t s = 0; s < d; ++s) {
        source[s] = static_cast<Count>(rng.below(4));
        target[s] = static_cast<Count>(rng.below(3));
      }
      auto result =
          ppsc::petri::shortest_covering_word(net, source, target, 100000);
      if (result.word.has_value()) {
        ++coverable_count;
        if (result.word->size() > longest) {
          longest = result.word->size();
          worst_norm_rho = target.norm_inf();
          worst_norm_t = net.norm_inf();
        }
      }
    }
    double log2_bound = ppsc::bounds::log2_rackoff_bound(
        static_cast<std::uint64_t>(worst_norm_rho),
        static_cast<std::uint64_t>(worst_norm_t), d);
    double log2_max =
        longest > 0 ? std::log2(static_cast<double>(longest)) : 0.0;
    table.add_row({std::to_string(d), std::to_string(kNets),
                   std::to_string(coverable_count), std::to_string(longest),
                   ppsc::util::format_double(log2_max, 4),
                   ppsc::util::format_double(log2_bound, 4),
                   log2_max <= log2_bound ? "yes" : "NO"});
  }
  table.print();

  std::printf(
      "\nThe bound is doubly exponential in d; observed shortest covering\n"
      "words are tiny in comparison — Lemma 5.3 is safe by a huge margin.\n");
  return 0;
}
