// E15 — Ablation: the four interchangeable schedulers.
//
// All four schedulers (agent-array, sharded agent-array, census alias
// table, count-based) implement the same productive interaction
// distribution (uniform random pair ≙ instantiation-weighted
// transition sampling on pairwise conservative nets); their
// convergence statistics must agree within sampling noise while their
// throughput characteristics differ by orders of magnitude. Part 1
// forces each scheduler through measure_convergence on identical
// protocols, populations and seeds; part 2 reports raw throughput in
// each scheduler's natural unit; part 3 demonstrates the parallel
// sweep runner's determinism.

#include <chrono>
#include <cstdio>

#include "core/constructions.h"
#include "report.h"
#include "sim/census.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"
#include "sim/sharded.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double steps_per_second_agent(const ppsc::core::ConstructedProtocol& c,
                              ppsc::core::Count population,
                              std::uint64_t steps) {
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  ppsc::sim::AgentSimulator simulator(
      *table, c.protocol.initial_config({population}), 17);
  auto start = Clock::now();
  for (std::uint64_t i = 0; i < steps; ++i) simulator.step();
  std::chrono::duration<double> elapsed = Clock::now() - start;
  return static_cast<double>(steps) / elapsed.count();
}

// Sharded path: raw draws/second (the same unit as the agent-array
// row), accumulated epoch by epoch until the draw budget is met.
double steps_per_second_sharded(const ppsc::core::ConstructedProtocol& c,
                                ppsc::core::Count population,
                                std::uint64_t draws) {
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  ppsc::sim::ShardedSimulator simulator(
      *table, c.protocol.initial_config({population}), 17, {});
  auto start = Clock::now();
  while (simulator.interactions() < draws && simulator.epoch()) {
  }
  std::chrono::duration<double> elapsed = Clock::now() - start;
  return static_cast<double>(simulator.interactions()) / elapsed.count();
}

// Census path: *productive* steps/second. The protocols converge, so
// accumulate across repeated fresh runs until the budget is met, like
// the count-based row (construction is O(rule cells), negligible).
double steps_per_second_census(const ppsc::core::ConstructedProtocol& c,
                               ppsc::core::Count population,
                               std::uint64_t steps) {
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  std::uint64_t executed = 0;
  std::uint64_t seed = 17;
  auto start = Clock::now();
  while (executed < steps) {
    ppsc::sim::CensusSimulator simulator(
        *table, c.protocol.initial_config({population}), seed++);
    while (executed < steps && simulator.step()) ++executed;
  }
  std::chrono::duration<double> elapsed = Clock::now() - start;
  return static_cast<double>(executed) / elapsed.count();
}

double steps_per_second_count(const ppsc::core::ConstructedProtocol& c,
                              ppsc::core::Count population,
                              std::uint64_t steps) {
  // The count scheduler only performs *effective* steps and the protocols
  // converge quickly, so accumulate effective steps across repeated fresh
  // runs until the budget is met (construction time included; it is
  // negligible against the per-step weight computation).
  std::uint64_t executed = 0;
  std::uint64_t seed = 17;
  auto start = Clock::now();
  while (executed < steps) {
    ppsc::sim::CountSimulator simulator(
        c.protocol, c.protocol.initial_config({population}), seed++);
    while (executed < steps && simulator.step()) ++executed;
  }
  std::chrono::duration<double> elapsed = Clock::now() - start;
  return static_cast<double>(executed) / elapsed.count();
}

const char* scheduler_name(ppsc::sim::SchedulerChoice choice) {
  switch (choice) {
    case ppsc::sim::SchedulerChoice::kAgent:
      return "agent-array";
    case ppsc::sim::SchedulerChoice::kSharded:
      return "sharded";
    case ppsc::sim::SchedulerChoice::kCensus:
      return "census";
    case ppsc::sim::SchedulerChoice::kCount:
      return "count-based";
    default:
      return "auto";
  }
}

}  // namespace

int main() {
  ppsc::bench::Report report("e15_scheduler_ablation");
  std::printf(
      "E15 part 1: convergence agreement across the four schedulers\n\n");
  // Identical protocol, populations and seeds for every arm: only the
  // forced scheduler differs, so the mean productive-step counts must
  // agree within sampling noise and every converged run must reach the
  // correct consensus. (The sharded arm uses 4 shards so each shard
  // holds a non-trivial slice even at the small populations.)
  {
    ppsc::util::TablePrinter agreement(
        {"scheduler", "population", "mean steps", "correct"});
    const ppsc::sim::SchedulerChoice arms[] = {
        ppsc::sim::SchedulerChoice::kAgent,
        ppsc::sim::SchedulerChoice::kSharded,
        ppsc::sim::SchedulerChoice::kCensus,
        ppsc::sim::SchedulerChoice::kCount,
    };
    auto c = ppsc::core::unary_counting(6);
    for (ppsc::core::Count population : {64, 256}) {
      for (ppsc::sim::SchedulerChoice arm : arms) {
        ppsc::sim::RunOptions options;
        options.scheduler = arm;
        options.shards = 4;
        auto stats =
            ppsc::sim::measure_convergence(c, {population}, 8, options);
        report.add_items(8);
        agreement.add_row({scheduler_name(arm), std::to_string(population),
                           ppsc::util::format_double(stats.mean_steps, 5),
                           std::to_string(stats.correct) + "/8"});
      }
    }
    agreement.print();
  }

  std::printf(
      "\nE15 part 1b: count-scheduler fallback on a table-free protocol\n\n");
  // The destructive variant has identical predicate semantics but does
  // not compile to a pair table, so every choice degrades to the count
  // scheduler; its dynamics (and so its means) differ, but every
  // converged run must still reach the correct consensus.
  {
    ppsc::util::TablePrinter fallback(
        {"protocol", "population", "mean steps", "correct"});
    auto destructive = ppsc::core::destructive_unary_counting(6);
    for (ppsc::core::Count population : {64, 256}) {
      auto stats = ppsc::sim::measure_convergence(destructive, {population}, 8);
      report.add_items(8);
      fallback.add_row({"destructive(6)", std::to_string(population),
                        ppsc::util::format_double(stats.mean_steps, 5),
                        std::to_string(stats.correct) + "/8"});
    }
    fallback.print();
  }

  std::printf("\nE15 part 2: raw scheduler throughput\n\n");
  // Each row reports the scheduler's natural unit: raw draws/s for the
  // agent-array and sharded paths, productive steps/s for the census
  // and count paths (they never execute null draws).
  ppsc::util::TablePrinter throughput(
      {"scheduler", "population", "unit", "rate/s"});
  auto c = ppsc::core::unary_counting(8);
  for (ppsc::core::Count population : {1000, 100000}) {
    throughput.add_row(
        {"agent-array", std::to_string(population), "draws",
         ppsc::util::format_double(
             steps_per_second_agent(c, population, 2'000'000), 4)});
  }
  throughput.add_row(
      {"sharded", "1000000", "draws",
       ppsc::util::format_double(
           steps_per_second_sharded(c, 1000000, 2'000'000), 4)});
  throughput.add_row(
      {"census", "1000000", "productive",
       ppsc::util::format_double(steps_per_second_census(c, 1000000, 100'000),
                                 4)});
  throughput.add_row(
      {"count-based", "1000", "productive",
       ppsc::util::format_double(steps_per_second_count(c, 1000, 200'000),
                                 4)});
  throughput.print();

  std::printf("\nE15 part 3: parallel sweep determinism\n\n");
  auto serial = ppsc::sim::measure_convergence(c, {500}, 8);
  report.add_items(16);
  auto parallel = ppsc::sim::measure_convergence_parallel(c, {500}, 8, {}, 4);
  std::printf("serial mean %.1f == parallel mean %.1f: %s\n",
              serial.mean_steps, parallel.mean_steps,
              serial.mean_steps == parallel.mean_steps ? "yes" : "NO");
  return 0;
}
