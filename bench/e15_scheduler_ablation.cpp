// E15 — Ablation: agent-array vs count-based scheduler.
//
// The two schedulers implement the same interaction distribution (uniform
// random pair ≙ instantiation-weighted transition sampling on pairwise
// conservative nets); their convergence statistics must agree within
// sampling noise while their throughput differs by orders of magnitude.
// Also demonstrates the parallel sweep runner's determinism.

#include <chrono>
#include <cstdio>

#include "core/constructions.h"
#include "report.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double steps_per_second_agent(const ppsc::core::ConstructedProtocol& c,
                              ppsc::core::Count population,
                              std::uint64_t steps) {
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  ppsc::sim::AgentSimulator simulator(
      *table, c.protocol.initial_config({population}), 17);
  auto start = Clock::now();
  for (std::uint64_t i = 0; i < steps; ++i) simulator.step();
  std::chrono::duration<double> elapsed = Clock::now() - start;
  return static_cast<double>(steps) / elapsed.count();
}

double steps_per_second_count(const ppsc::core::ConstructedProtocol& c,
                              ppsc::core::Count population,
                              std::uint64_t steps) {
  // The count scheduler only performs *effective* steps and the protocols
  // converge quickly, so accumulate effective steps across repeated fresh
  // runs until the budget is met (construction time included; it is
  // negligible against the per-step weight computation).
  std::uint64_t executed = 0;
  std::uint64_t seed = 17;
  auto start = Clock::now();
  while (executed < steps) {
    ppsc::sim::CountSimulator simulator(
        c.protocol, c.protocol.initial_config({population}), seed++);
    while (executed < steps && simulator.step()) ++executed;
  }
  std::chrono::duration<double> elapsed = Clock::now() - start;
  return static_cast<double>(executed) / elapsed.count();
}

}  // namespace

int main() {
  ppsc::bench::Report report("e15_scheduler_ablation");
  std::printf("E15 part 1: convergence agreement between schedulers\n\n");
  // Use a protocol the count scheduler must also run: compare mean steps to
  // silence over matched run counts. The count scheduler skips null
  // interactions, so compare *effective* (non-null) steps: the agent-array
  // result is scaled by its non-null fraction... instead compare the
  // CONSENSUS correctness and report both raw means.
  ppsc::util::TablePrinter agreement({"protocol", "population",
                                      "agent-array mean", "correct",
                                      "count-based mean", "correct"});
  for (ppsc::core::Count population : {32, 64}) {
    auto c = ppsc::core::unary_counting(6);
    auto fast = ppsc::sim::measure_convergence(c, {population}, 8);
    report.add_items(8);

    // Force the count-based path through a protocol wrapper: the
    // CountSimulator is exercised via a destructive variant with identical
    // predicate semantics.
    auto destructive = ppsc::core::destructive_unary_counting(6);
    auto slow = ppsc::sim::measure_convergence(destructive, {population}, 8);
    report.add_items(8);

    agreement.add_row(
        {"unary(6) / destructive(6)", std::to_string(population),
         ppsc::util::format_double(fast.mean_steps, 5),
         std::to_string(fast.correct) + "/8",
         ppsc::util::format_double(slow.mean_steps, 5),
         std::to_string(slow.correct) + "/8"});
  }
  agreement.print();

  std::printf("\nE15 part 2: raw scheduler throughput (steps/second)\n\n");
  ppsc::util::TablePrinter throughput(
      {"scheduler", "population", "steps/s"});
  auto c = ppsc::core::unary_counting(8);
  for (ppsc::core::Count population : {1000, 100000}) {
    throughput.add_row(
        {"agent-array", std::to_string(population),
         ppsc::util::format_double(
             steps_per_second_agent(c, population, 2'000'000), 4)});
  }
  throughput.add_row(
      {"count-based", "1000",
       ppsc::util::format_double(steps_per_second_count(c, 1000, 200'000),
                                 4)});
  throughput.print();

  std::printf("\nE15 part 3: parallel sweep determinism\n\n");
  auto serial = ppsc::sim::measure_convergence(c, {500}, 8);
  report.add_items(16);
  auto parallel = ppsc::sim::measure_convergence_parallel(c, {500}, 8, {}, 4);
  std::printf("serial mean %.1f == parallel mean %.1f: %s\n",
              serial.mean_steps, parallel.mean_steps,
              serial.mean_steps == parallel.mean_steps ? "yes" : "NO");
  return 0;
}
