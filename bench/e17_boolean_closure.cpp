// E17 — Boolean closure of stably computable predicates (Remark 1's
// Presburger direction).
//
// Composite predicates assembled by the negation/product combinators, each
// verified exhaustively by the Section 2 checker and cross-checked by
// simulation. State counts multiply — the classical cost of the product
// construction, and one reason succinctness results like [5, 6] matter.

#include <cstdio>

#include "core/combinators.h"
#include "report.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "verify/stable.h"

int main() {
  ppsc::bench::Report report("e17_boolean_closure");
  using ppsc::core::Count;

  std::printf("E17: composite predicates via negation and product\n\n");
  ppsc::util::TablePrinter table({"predicate", "states", "transitions",
                                  "verified (x <= bound)", "simulated x",
                                  "consensus"});

  struct Job {
    ppsc::core::ConstructedProtocol constructed;
    Count bound;
    Count simulate_at;
  };
  std::vector<Job> jobs;
  jobs.push_back({ppsc::core::negate(ppsc::core::unary_counting(3)), 6, 2});
  jobs.push_back({ppsc::core::interval_counting(2, 4), 7, 3});
  jobs.push_back({ppsc::core::conjunction(ppsc::core::unary_counting(2),
                                          ppsc::core::modulo_counting(2, 1)),
                  6, 5});
  jobs.push_back({ppsc::core::disjunction(ppsc::core::unary_counting(4),
                                          ppsc::core::modulo_counting(3, 0)),
                  6, 3});

  for (auto& job : jobs) {
    auto verdict = ppsc::verify::check_up_to(job.constructed.protocol,
                                             job.constructed.predicate,
                                             job.bound);
    auto run = ppsc::sim::run_to_silence(job.constructed.protocol,
                                         {job.simulate_at});
    bool expected = job.constructed.predicate({job.simulate_at});
    std::string consensus =
        run.final_output.exactly_one()      ? "1"
        : run.final_output.subset_of_zero() ? "0"
                                            : "mixed";
    table.add_row(
        {job.constructed.predicate.name,
         std::to_string(job.constructed.protocol.num_states()),
         std::to_string(job.constructed.protocol.net().num_transitions()),
         verdict.verified() ? "yes" : "NO",
         std::to_string(job.simulate_at),
         consensus + (consensus == (expected ? "1" : "0") ? " (correct)"
                                                          : " (WRONG)")});
  }
  table.print();

  std::printf(
      "\nEvery composite is verified exhaustively; the product construction\n"
      "pays with multiplied state counts (and |T1||P2|^2 + |T2||P1|^2\n"
      "transitions) — Boolean structure is exactly where succinctness\n"
      "results earn their keep.\n");
  return 0;
}
