// E10 — Corollary 4.4: the closed gap.
//
// For n across 80 orders of magnitude: the paper's state lower bound
// (both the closed form and the exact inversion of Theorem 4.3), the
// Czerner–Esparza inverse-Ackermann lower bound it supersedes, and the
// O(log log n) upper bound of [6] it almost meets.

#include <cmath>
#include <cstdio>

#include "bounds/ackermann.h"
#include "bounds/formulas.h"
#include "report.h"
#include "util/table.h"

int main() {
  ppsc::bench::Report report("e10_corollary44");
  namespace bounds = ppsc::bounds;

  std::printf(
      "E10: state bounds for (i >= n), width <= 2, leaders <= 2 (m = 2)\n\n");
  ppsc::util::TablePrinter table({"n", "log2 n", "CE21 A^-1(n)",
                                  "cor4.4 h=.25", "cor4.4 h=.49",
                                  "Thm4.3 exact d", "BEJ upper loglog"});

  struct Row {
    const char* label;
    double log2_n;
  };
  for (Row row : {Row{"10^3", 9.97}, Row{"10^6", 19.93}, Row{"10^12", 39.86},
                  Row{"10^24", 79.73}, Row{"10^48", 159.5},
                  Row{"10^100", 332.2}, Row{"2^10^4", 1e4}, Row{"2^10^6", 1e6},
                  Row{"2^10^9", 1e9}, Row{"2^10^12", 1e12},
                  Row{"2^10^15", 1e15}}) {
    report.add_items(1);
    table.add_row(
        {row.label, ppsc::util::format_double(row.log2_n, 4),
         std::to_string(bounds::inverse_ackermann_log2(row.log2_n)),
         ppsc::util::format_double(
             bounds::corollary44_lower_bound(row.log2_n, 2, 0.25), 3),
         ppsc::util::format_double(
             bounds::corollary44_lower_bound(row.log2_n, 2, 0.49), 3),
         std::to_string(bounds::theorem43_min_states(row.log2_n, 2)),
         ppsc::util::format_double(bounds::bej_loglog_states(row.log2_n), 3)});
  }
  table.print();

  std::printf(
      "\nReading: the CE21 bound is frozen at 3 below Ackermannian n; the\n"
      "paper's bound keeps growing with log log n and crosses it near\n"
      "n = 2^(10^9). 'Thm4.3 exact d' inverts the main theorem directly\n"
      "(smallest d whose bound reaches n) — the sharpest machine-checkable\n"
      "form of the lower bound; the BEJ upper bound shows the remaining\n"
      "sqrt gap.\n");

  // Exact BigUint evaluation for a small instance, demonstrating that the
  // exact and log-space paths agree on real numbers, not just formulas.
  auto exact = bounds::theorem43_bound(2, 2, 4);
  std::printf(
      "\nExact Theorem 4.3 bound for d=4, w=2, L=2: %zu digits "
      "(log2 = %.2f, direct log2 = %.2f)\n",
      exact.digits10(), exact.log2(), bounds::log2_theorem43_bound(2, 2, 4));
  return 0;
}
