// E8 — Pottier's bound [12] and Lemma 7.3's multicycle replacement.
//
// Part 1: Hilbert bases of random homogeneous systems; max ‖x‖₁ of a
// minimal solution vs (2 + Σ‖a_j‖∞)^d.
// Part 2: the Lemma 7.3 replacement on pump/drain ring control nets scaled
// by the multicycle size ℓ: |Θ′| stays constant while |Θ| grows, and stays
// below the lemma's bound.

#include <cmath>
#include <cstdio>

#include "report.h"
#include "solver/diophantine.h"
#include "solver/multicycle.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using ppsc::solver::HomogeneousSystem;

HomogeneousSystem random_system(std::size_t vars, std::size_t rows,
                                ppsc::util::Xoshiro256& rng) {
  HomogeneousSystem system;
  system.num_vars = vars;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::int64_t> row(vars);
    for (auto& coefficient : row) {
      coefficient = static_cast<std::int64_t>(rng.below(7)) - 3;  // [-3, 3]
    }
    system.rows.push_back(std::move(row));
  }
  return system;
}

}  // namespace

int main() {
  ppsc::bench::Report report("e8_pottier");
  std::printf("E8 part 1: Hilbert basis norms vs Pottier bound\n\n");
  ppsc::util::TablePrinter part1({"vars", "rows", "systems", "max basis size",
                                  "max log2 |x|_1", "log2 bound", "holds"});

  ppsc::util::Xoshiro256 rng(12);
  for (std::size_t vars : {3, 4, 5}) {
    for (std::size_t rows : {1, 2}) {
      std::size_t max_basis = 0;
      double max_norm = 0.0;
      double bound = 0.0;
      bool all_hold = true;
      const int kSystems = 15;
      for (int i = 0; i < kSystems; ++i) {
        report.add_items(1);
        auto system = random_system(vars, rows, rng);
        auto result = ppsc::solver::hilbert_basis(system);
        if (!result.complete) continue;
        max_basis = std::max(max_basis, result.basis.size());
        double system_bound = ppsc::solver::log2_pottier_bound(system);
        for (const auto& element : result.basis) {
          double log2_norm = std::log2(
              static_cast<double>(ppsc::solver::norm_l1(element)));
          max_norm = std::max(max_norm, log2_norm);
          if (log2_norm > system_bound) all_hold = false;
        }
        bound = std::max(bound, system_bound);
      }
      part1.add_row({std::to_string(vars), std::to_string(rows),
                     std::to_string(kSystems), std::to_string(max_basis),
                     ppsc::util::format_double(max_norm, 4),
                     ppsc::util::format_double(bound, 4),
                     all_hold ? "yes" : "NO"});
    }
  }
  part1.print();

  std::printf("\nE8 part 2: Lemma 7.3 replacement size vs input multicycle\n\n");
  using ppsc::petri::Config;
  using ppsc::petri::ControlStateNet;
  using ppsc::petri::PetriNet;

  PetriNet net(3);
  net.add(Config{1, 0, 0}, Config{0, 1, 0});
  net.add(Config{0, 1, 0}, Config{1, 0, 1});  // pump c
  net.add(Config{0, 1, 1}, Config{1, 0, 0});  // drain c
  ControlStateNet cnet(net, 2);
  cnet.add_edge(0, 0, 1);
  cnet.add_edge(1, 1, 0);
  cnet.add_edge(1, 2, 0);

  ppsc::util::TablePrinter part2({"|Theta|", "Delta(c)", "|Theta'|",
                                  "Delta'(c)", "log2 bound", "holds"});
  std::vector<bool> q_mask{true, true, false};
  double log2_bound = ppsc::solver::log2_lemma73_length_bound(cnet);
  for (std::uint64_t scale : {10, 100, 1000, 10000}) {
    report.add_items(1);
    // scale pump cycles + scale/2 drain cycles.
    std::vector<std::uint64_t> theta{scale + scale / 2, scale, scale / 2};
    auto replacement =
        ppsc::solver::small_multicycle(cnet, theta, q_mask, /*k=*/3);
    if (!replacement.has_value()) {
      part2.add_row({std::to_string(theta[0] + theta[1] + theta[2]), "-", "-",
                     "-", "-", "NO"});
      continue;
    }
    std::uint64_t theta_len = theta[0] + theta[1] + theta[2];
    bool holds = std::log2(static_cast<double>(replacement->length)) <=
                 log2_bound;
    part2.add_row(
        {std::to_string(theta_len),
         std::to_string(scale - scale / 2),
         std::to_string(replacement->length),
         std::to_string(replacement->displacement[2]),
         ppsc::util::format_double(log2_bound, 4), holds ? "yes" : "NO"});
  }
  part2.print();

  std::printf(
      "\n|Theta'| is independent of |Theta|: the lemma compresses pumping\n"
      "multicycles to constant size while preserving displacement signs.\n");
  return 0;
}
