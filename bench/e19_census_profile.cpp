// E19 — Convergence profiles: the census trajectory of a run.
//
// How the 1-consensus spreads through the population over time, per family.
// The profile is the figure-equivalent of convergence dynamics: unary
// protocols show a long merge phase followed by a fast epidemic spread of
// F; Example 4.2 converts almost instantly once the leaders are exhausted.

#include <cstdint>
#include <cstdio>

#include "core/constructions.h"
#include "petri/coverability.h"
#include "petri/karp_miller.h"
#include "petri/petri_net.h"
#include "petri/reachability.h"
#include "report.h"
#include "sim/expected_time.h"
#include "sim/parallel.h"
#include "sim/trace.h"
#include "util/table.h"
#include "verify/stable.h"

namespace {

std::uint64_t print_profile(const char* name,
                            const ppsc::core::ConstructedProtocol& c,
                            ppsc::core::Count population) {
  auto trace = ppsc::sim::record_census_trace(c.protocol, {population},
                                              5'000'000, /*seed=*/5);
  std::printf("%s, population %lld (converged=%d, %llu steps):\n", name,
              static_cast<long long>(population), trace.converged,
              static_cast<unsigned long long>(trace.total_steps));
  ppsc::util::TablePrinter table({"step", "outputs 0", "outputs 1",
                                  "1-fraction"});
  for (const auto& point : trace.points) {
    double total =
        static_cast<double>(point.output_zero + point.output_star +
                            point.output_one);
    table.add_row({std::to_string(point.step),
                   std::to_string(point.output_zero),
                   std::to_string(point.output_one),
                   ppsc::util::format_double(
                       total > 0 ? static_cast<double>(point.output_one) /
                                       total
                                 : 0.0,
                       3)});
  }
  table.print();
  std::printf("\n");
  return trace.total_steps;
}

// The engine-level view of the same families: petri::explore's per-run
// ExploreStats show what the BFS paid to intern the state space (the
// census bench doubles as the explore profiling harness).
void print_state_space_census() {
  std::printf("State-space census (petri::explore stats, population 6):\n\n");
  ppsc::util::TablePrinter table({"family", "configs", "edges",
                                  "frontier peak", "truncated"});
  struct Family {
    const char* name;
    ppsc::core::ConstructedProtocol constructed;
  };
  const ppsc::core::Count population = 6;
  for (Family family : {Family{"unary(8)", ppsc::core::unary_counting(8)},
                        Family{"binary(8)", ppsc::core::binary_counting(8)},
                        Family{"threshold_belief(8)",
                               ppsc::core::threshold_belief(8)},
                        Family{"example_4_2(8)",
                               ppsc::core::example_4_2(8)}}) {
    ppsc::petri::ExploreLimits limits;
    limits.max_nodes = 200000;
    const auto graph = ppsc::petri::explore(
        ppsc::petri::PetriNet(family.constructed.protocol.net()),
        {ppsc::petri::Config(
            family.constructed.protocol.initial_config({population}))},
        limits);
    table.add_row({family.name, std::to_string(graph.stats.configs),
                   std::to_string(graph.stats.edges),
                   std::to_string(graph.stats.frontier_peak),
                   graph.stats.truncated ? "yes" : "no"});
  }
  table.print();
  std::printf("\n");
}

// One small run of every engine on the same family (unary counting).
// The census bench is the designated trace sample (scripts/bench_report.sh
// archives its PPSC_TRACE_JSON output), so this section guarantees the
// trace holds nested spans from all engines -- explore, coverability,
// karp_miller, expected_time, verify, and a multi-threaded sim sweep
// whose per-run spans land on distinct worker-thread tracks.
void print_engine_cross_section() {
  std::printf("Engine cross-section (unary(6), one query per engine):\n\n");
  ppsc::util::TablePrinter table({"engine", "result", "work"});
  auto c = ppsc::core::unary_counting(6);
  const ppsc::petri::PetriNet net(c.protocol.net());
  const ppsc::petri::Config source(c.protocol.initial_config({5}));
  const ppsc::petri::Config target = ppsc::petri::Config::unit(
      c.protocol.num_states(), c.protocol.states().at("6!"));

  ppsc::petri::BackwardBasisStats basis_stats;
  const auto basis =
      ppsc::petri::backward_basis(net, target, 1u << 22, &basis_stats);
  table.add_row({"coverability", std::to_string(basis.size()) + " basis",
                 std::to_string(basis_stats.iterations) + " iterations"});

  const auto km = ppsc::petri::karp_miller(net, source, 100000);
  table.add_row({"karp_miller", std::to_string(km.nodes.size()) + " nodes",
                 km.covers(target) ? "covers 6!" : "no cover"});

  const auto et =
      ppsc::sim::expected_interactions_to_silence(c.protocol, {5}, 200000);
  table.add_row({"expected_time",
                 ppsc::util::format_double(et.expected_steps, 2) + " steps",
                 std::to_string(et.sccs) + " sccs"});

  const auto verdict = ppsc::verify::check_input(
      c.protocol, c.predicate, {5}, ppsc::verify::CheckOptions{});
  table.add_row({"verify", verdict.ok ? "ok" : "FAIL",
                 std::to_string(verdict.reachable_configs) + " configs"});

  ppsc::sim::RunOptions options;
  options.max_steps = 2'000'000;
  const auto sweep = ppsc::sim::measure_convergence_parallel(
      c, {5}, /*runs=*/8, options, /*num_threads=*/4);
  table.add_row({"sim.parallel", std::to_string(sweep.converged) + "/8 runs",
                 ppsc::util::format_double(sweep.mean_steps, 1) +
                     " mean steps"});
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  ppsc::bench::Report report("e19_census_profile");
  std::printf("E19: output census trajectories (accepting runs)\n\n");
  std::uint64_t steps = 0;
  steps += print_profile("unary(8)", ppsc::core::unary_counting(8), 256);
  steps += print_profile("binary(8)", ppsc::core::binary_counting(8), 256);
  steps +=
      print_profile("threshold_belief(8)", ppsc::core::threshold_belief(8),
                    256);
  steps += print_profile("example_4_2(8)", ppsc::core::example_4_2(8), 256);
  report.add_items(static_cast<double>(steps));
  print_state_space_census();
  print_engine_cross_section();
  std::printf(
      "All profiles end at 1-fraction = 1.0; the knee where the fraction\n"
      "jumps marks the accept event, after which conversion is an epidemic\n"
      "(logarithmic parallel time).\n");
  return 0;
}
