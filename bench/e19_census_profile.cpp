// E19 — Convergence profiles: the census trajectory of a run.
//
// How the 1-consensus spreads through the population over time, per family.
// The profile is the figure-equivalent of convergence dynamics: unary
// protocols show a long merge phase followed by a fast epidemic spread of
// F; Example 4.2 converts almost instantly once the leaders are exhausted.

#include <cstdio>

#include "core/constructions.h"
#include "sim/trace.h"
#include "util/table.h"

namespace {

void print_profile(const char* name, const ppsc::core::ConstructedProtocol& c,
                   ppsc::core::Count population) {
  auto trace = ppsc::sim::record_census_trace(c.protocol, {population},
                                              5'000'000, /*seed=*/5);
  std::printf("%s, population %lld (converged=%d, %llu steps):\n", name,
              static_cast<long long>(population), trace.converged,
              static_cast<unsigned long long>(trace.total_steps));
  ppsc::util::TablePrinter table({"step", "outputs 0", "outputs 1",
                                  "1-fraction"});
  for (const auto& point : trace.points) {
    double total =
        static_cast<double>(point.output_zero + point.output_star +
                            point.output_one);
    table.add_row({std::to_string(point.step),
                   std::to_string(point.output_zero),
                   std::to_string(point.output_one),
                   ppsc::util::format_double(
                       total > 0 ? static_cast<double>(point.output_one) /
                                       total
                                 : 0.0,
                       3)});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("E19: output census trajectories (accepting runs)\n\n");
  print_profile("unary(8)", ppsc::core::unary_counting(8), 256);
  print_profile("binary(8)", ppsc::core::binary_counting(8), 256);
  print_profile("threshold_belief(8)", ppsc::core::threshold_belief(8), 256);
  print_profile("example_4_2(8)", ppsc::core::example_4_2(8), 256);
  std::printf(
      "All profiles end at 1-fraction = 1.0; the knee where the fraction\n"
      "jumps marks the accept event, after which conversion is an epidemic\n"
      "(logarithmic parallel time).\n");
  return 0;
}
