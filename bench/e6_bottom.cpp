// E6 — Theorem 6.1: short executions to bottom configurations.
//
// For a family of nets (finite and unbounded) we compute explicit witnesses
// (σ, w, Q, α, β) and report |σ|, |w|, the cardinality of the T|Q-component
// of α|Q, and the theorem's bound b (log2). The witnesses verify by replay;
// the bound towers above the measurements.

#include <cmath>
#include <cstdio>

#include "bounds/formulas.h"
#include "core/constructions.h"
#include "petri/bottom.h"
#include "report.h"
#include "util/table.h"

int main() {
  ppsc::bench::Report report("e6_bottom");
  using ppsc::petri::Config;
  using ppsc::petri::PetriNet;

  std::printf("E6: Theorem 6.1 bottom-configuration witnesses\n\n");
  ppsc::util::TablePrinter table({"net", "d", "|sigma|", "|w|", "|Q|",
                                  "component", "verified", "log2 b"});

  struct Case {
    std::string name;
    PetriNet net;
    Config rho;
  };
  std::vector<Case> cases;

  {
    PetriNet net(2);
    net.add(Config{1, 0}, Config{0, 1});
    cases.push_back({"chain a->b", net, Config{3, 0}});
  }
  {
    PetriNet net(2);
    net.add(Config{1, 0}, Config{0, 1});
    net.add(Config{0, 1}, Config{1, 0});
    cases.push_back({"toggle", net, Config{3, 0}});
  }
  {
    PetriNet net(2);
    net.add(Config{1, 0}, Config{1, 1});
    cases.push_back({"pump", net, Config{1, 0}});
  }
  {
    PetriNet net(3);
    net.add(Config{1, 0, 0}, Config{0, 1, 0});
    net.add(Config{0, 1, 0}, Config{1, 0, 0});
    net.add(Config{1, 0, 0}, Config{1, 0, 1});
    cases.push_back({"toggle+pump", net, Config{1, 0, 0}});
  }
  {
    // Example 4.2's net restricted to P \ I from the leader configuration —
    // the exact object Section 8 applies Theorem 6.1 to.
    auto c = ppsc::core::example_4_2(3);
    std::vector<bool> mask(c.protocol.num_states(), true);
    mask[c.protocol.states().at("X")] = false;
    cases.push_back({"example42 T|P' (n=3)",
                     PetriNet(c.protocol.net()).restrict(mask),
                     Config(c.protocol.leaders()).restrict(mask)});
  }

  for (auto& test_case : cases) {
    report.add_items(1);
    ppsc::petri::ExploreLimits limits;
    limits.max_nodes = 200000;
    auto witness =
        ppsc::petri::find_bottom_witness(test_case.net, test_case.rho, limits);
    if (!witness.has_value()) {
      table.add_row({test_case.name, std::to_string(test_case.net.num_states()),
                     "-", "-", "-", "-", "not found", "-"});
      continue;
    }
    bool ok = ppsc::petri::check_bottom_witness(test_case.net, test_case.rho,
                                                *witness, limits);
    std::size_t q_size = 0;
    for (bool in_q : witness->q_mask) {
      if (in_q) ++q_size;
    }
    double log2_b = ppsc::bounds::log2_theorem61_b(
        static_cast<std::uint64_t>(test_case.net.norm_inf()),
        static_cast<std::uint64_t>(test_case.rho.norm_inf()),
        test_case.net.num_states());
    table.add_row({test_case.name, std::to_string(test_case.net.num_states()),
                   std::to_string(witness->sigma.size()),
                   std::to_string(witness->w.size()), std::to_string(q_size),
                   std::to_string(witness->component_size),
                   ok ? "yes" : "NO",
                   ppsc::util::format_double(log2_b, 4)});
  }
  table.print();

  std::printf(
      "\nAll witnesses replay correctly; |sigma|, |w| and component sizes are\n"
      "minuscule against b (log2 b reaches 10^2..10^5 already for d <= 6).\n");
  return 0;
}
