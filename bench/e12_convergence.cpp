// E12 — Convergence of the counting families.
//
// Mean interactions to silent consensus vs population size, per family.
// The classical expectation: pairwise protocols converge in roughly
// O(n² log n) interactions (parallel time O(n log n)) for these gossip-like
// dynamics; the table exposes the growth and that every run lands on the
// correct consensus.

#include <cstdio>

#include "core/constructions.h"
#include "report.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  ppsc::bench::Report report("e12_convergence");
  using ppsc::core::Count;

  std::printf("E12: interactions to silent consensus (mean over runs)\n\n");
  ppsc::util::TablePrinter table({"family", "n", "population", "runs",
                                  "correct", "mean steps", "max steps"});

  struct Job {
    ppsc::core::ConstructedProtocol constructed;
    std::string n_label;
    Count population;
  };
  std::vector<Job> jobs;
  for (Count population : {32, 128, 512}) {
    jobs.push_back({ppsc::core::unary_counting(8), "8", population});
    jobs.push_back({ppsc::core::binary_counting(8), "8", population});
    jobs.push_back({ppsc::core::threshold_belief(8), "8", population});
    jobs.push_back({ppsc::core::example_4_2(8), "8", population});
  }
  jobs.push_back({ppsc::core::modulo_counting(5, 2), "mod 5", 256});

  const std::size_t kRuns = 5;
  for (auto& job : jobs) {
    auto stats =
        ppsc::sim::measure_convergence(job.constructed, {job.population}, kRuns);
    report.add_items(static_cast<double>(stats.runs));
    table.add_row({job.constructed.family, job.n_label,
                   std::to_string(job.population), std::to_string(stats.runs),
                   std::to_string(stats.correct),
                   ppsc::util::format_double(stats.mean_steps, 5),
                   ppsc::util::format_double(stats.max_steps_observed, 5)});
  }

  // Majority with a two-dimensional input. The 4-state protocol's tie rule
  // (a + b -> b + b) makes the 1-consensus side fast only when the surviving
  // strong-A count exceeds the passive count (drift argument): measure the
  // fast regimes; the margin-1 A-side is exponentially slow under random
  // scheduling even though it stably computes (see the verifier tests).
  auto majority = ppsc::core::majority();
  for (Count population : {32, 128, 512}) {
    struct Side {
      const char* label;
      Count a;
      Count b;
    };
    for (Side side : {Side{"majority A-heavy", population * 4 / 5,
                           population / 5},
                      Side{"majority B-heavy", population / 3,
                           population - population / 3},
                      Side{"majority tie", population / 2, population / 2}}) {
      auto stats =
          ppsc::sim::measure_convergence(majority, {side.a, side.b}, 5);
      report.add_items(static_cast<double>(stats.runs));
      table.add_row({side.label, "-", std::to_string(population),
                     std::to_string(stats.runs), std::to_string(stats.correct),
                     ppsc::util::format_double(stats.mean_steps, 5),
                     ppsc::util::format_double(stats.max_steps_observed, 5)});
    }
  }
  table.print();

  std::printf(
      "\nEvery measured run converges to the correct consensus; steps grow\n"
      "super-linearly in the population, as expected for pairwise gossip.\n"
      "(The margin-1 A-majority side of the 4-state protocol is omitted: its\n"
      "random-scheduler convergence time is exponential — correctness under\n"
      "fairness is proved exhaustively by the verifier instead.)\n");
  return 0;
}
