// E13 — Coverability engine scaling (google-benchmark).
//
// Backward-basis coverability and Karp–Miller on parameterized nets: the
// decision procedures behind the Section 5 stabilization tests. The
// backward benchmarks attach the engine's BackwardBasisStats as
// counters (basis peak, dominance comparisons, ...): `comparisons` is
// the quantity that actually walls past ~30 places, and the JSON
// emitted by --benchmark_out carries it for trend tracking.

#include <benchmark/benchmark.h>

#include "core/constructions.h"
#include "obs/trace.h"
#include "petri/coverability.h"
#include "petri/karp_miller.h"

namespace {

using ppsc::petri::Config;
using ppsc::petri::Count;
using ppsc::petri::PetriNet;

// One extra instrumented backward_basis call after timing, so the
// fixpoint statistics ride along as benchmark counters without
// perturbing the measured loop.
void attach_backward_stats(benchmark::State& state, const PetriNet& net,
                           const Config& target) {
  ppsc::petri::BackwardBasisStats stats;
  ppsc::petri::backward_basis(net, target, 1u << 22, &stats);
  state.counters["basis_final"] = static_cast<double>(stats.basis_final);
  state.counters["basis_peak"] = static_cast<double>(stats.basis_peak);
  state.counters["iterations"] = static_cast<double>(stats.iterations);
  state.counters["predecessors"] = static_cast<double>(stats.predecessors);
  state.counters["pruned"] = static_cast<double>(stats.pruned_dominated);
  state.counters["comparisons"] = static_cast<double>(stats.comparisons);
}

/// Chain net: s0 -> s1 -> ... -> s_{d-1}, cover the last place.
PetriNet chain_net(std::size_t d) {
  PetriNet net(d);
  for (std::size_t s = 0; s + 1 < d; ++s) {
    net.add(Config::unit(d, static_cast<std::uint32_t>(s)),
            Config::unit(d, static_cast<std::uint32_t>(s + 1)));
  }
  return net;
}

void BM_BackwardCoverability_Chain(benchmark::State& state) {
  const std::size_t d = state.range(0);
  PetriNet net = chain_net(d);
  Config source = Config::unit(d, 0, 3);
  Config target = Config::unit(d, static_cast<std::uint32_t>(d - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ppsc::petri::coverable(net, source, target));
  }
  attach_backward_stats(state, net, target);
}
BENCHMARK(BM_BackwardCoverability_Chain)->Arg(4)->Arg(8)->Arg(16);

void BM_BackwardCoverability_Example42(benchmark::State& state) {
  auto c = ppsc::core::example_4_2(state.range(0));
  Config source = c.protocol.initial_config({state.range(0) + 1});
  // Covering a fed leader F is the "some leader got fed" query.
  Config target =
      Config::unit(c.protocol.num_states(), c.protocol.states().at("F"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ppsc::petri::coverable(c.protocol.net(), source, target));
  }
  attach_backward_stats(state, PetriNet(c.protocol.net()), target);
}
BENCHMARK(BM_BackwardCoverability_Example42)->Arg(2)->Arg(8)->Arg(32);

void BM_StabilizationTest_Unary(benchmark::State& state) {
  // is_stabilized = one backward-coverability query per witness state;
  // the accumulated-n witness "n!" is the interesting one.
  auto c = ppsc::core::unary_counting(state.range(0));
  Config rho = c.protocol.initial_config({state.range(0) - 1});
  Config target = Config::unit(
      c.protocol.num_states(),
      c.protocol.states().at(std::to_string(state.range(0)) + "!"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ppsc::petri::coverable(c.protocol.net(), rho, target));
  }
  attach_backward_stats(state, PetriNet(c.protocol.net()), target);
}
BENCHMARK(BM_StabilizationTest_Unary)->Arg(4)->Arg(6)->Arg(8);

void BM_KarpMiller_Example42(benchmark::State& state) {
  auto c = ppsc::core::example_4_2(state.range(0));
  Config source = c.protocol.initial_config({state.range(0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ppsc::petri::karp_miller(c.protocol.net(), source, 100000));
  }
}
BENCHMARK(BM_KarpMiller_Example42)->Arg(2)->Arg(4);

void BM_ShortestCoveringWord_Unary(benchmark::State& state) {
  auto c = ppsc::core::unary_counting(6);
  Config source = c.protocol.initial_config({state.range(0)});
  Config target =
      Config::unit(c.protocol.num_states(), c.protocol.states().at("6!"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ppsc::petri::shortest_covering_word(
        c.protocol.net(), source, target, 200000));
  }
  // Forward-search ExploreStats from one untimed run.
  const auto result = ppsc::petri::shortest_covering_word(
      c.protocol.net(), source, target, 200000);
  state.counters["configs"] = static_cast<double>(result.stats.configs);
  state.counters["edges"] = static_cast<double>(result.stats.edges);
  state.counters["frontier_peak"] =
      static_cast<double>(result.stats.frontier_peak);
  state.counters["probes"] = static_cast<double>(result.stats.probes);
}
BENCHMARK(BM_ShortestCoveringWord_Unary)->Arg(6)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  // PPSC_TRACE_JSON: same contract as e11 -- arm the span tracer before
  // the benchmarks run, export a Chrome trace after.
  if (ppsc::obs::trace_json_env() != nullptr) {
    ppsc::obs::TraceRegistry::global().set_enabled(true);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ppsc::obs::write_trace_if_requested();
  return 0;
}
