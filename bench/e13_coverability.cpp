// E13 — Coverability engine scaling (google-benchmark).
//
// Backward-basis coverability and Karp–Miller on parameterized nets: the
// decision procedures behind the Section 5 stabilization tests.

#include <benchmark/benchmark.h>

#include "core/constructions.h"
#include "petri/coverability.h"
#include "petri/karp_miller.h"

namespace {

using ppsc::petri::Config;
using ppsc::petri::Count;
using ppsc::petri::PetriNet;

/// Chain net: s0 -> s1 -> ... -> s_{d-1}, cover the last place.
PetriNet chain_net(std::size_t d) {
  PetriNet net(d);
  for (std::size_t s = 0; s + 1 < d; ++s) {
    net.add(Config::unit(d, static_cast<std::uint32_t>(s)),
            Config::unit(d, static_cast<std::uint32_t>(s + 1)));
  }
  return net;
}

void BM_BackwardCoverability_Chain(benchmark::State& state) {
  const std::size_t d = state.range(0);
  PetriNet net = chain_net(d);
  Config source = Config::unit(d, 0, 3);
  Config target = Config::unit(d, static_cast<std::uint32_t>(d - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ppsc::petri::coverable(net, source, target));
  }
}
BENCHMARK(BM_BackwardCoverability_Chain)->Arg(4)->Arg(8)->Arg(16);

void BM_BackwardCoverability_Example42(benchmark::State& state) {
  auto c = ppsc::core::example_4_2(state.range(0));
  Config source = c.protocol.initial_config({state.range(0) + 1});
  // Covering a fed leader F is the "some leader got fed" query.
  Config target =
      Config::unit(c.protocol.num_states(), c.protocol.states().at("F"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ppsc::petri::coverable(c.protocol.net(), source, target));
  }
}
BENCHMARK(BM_BackwardCoverability_Example42)->Arg(2)->Arg(8)->Arg(32);

void BM_StabilizationTest_Unary(benchmark::State& state) {
  // is_stabilized = one backward-coverability query per witness state;
  // the accumulated-n witness "n!" is the interesting one.
  auto c = ppsc::core::unary_counting(state.range(0));
  Config rho = c.protocol.initial_config({state.range(0) - 1});
  Config target = Config::unit(
      c.protocol.num_states(),
      c.protocol.states().at(std::to_string(state.range(0)) + "!"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ppsc::petri::coverable(c.protocol.net(), rho, target));
  }
}
BENCHMARK(BM_StabilizationTest_Unary)->Arg(4)->Arg(6)->Arg(8);

void BM_KarpMiller_Example42(benchmark::State& state) {
  auto c = ppsc::core::example_4_2(state.range(0));
  Config source = c.protocol.initial_config({state.range(0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ppsc::petri::karp_miller(c.protocol.net(), source, 100000));
  }
}
BENCHMARK(BM_KarpMiller_Example42)->Arg(2)->Arg(4);

void BM_ShortestCoveringWord_Unary(benchmark::State& state) {
  auto c = ppsc::core::unary_counting(6);
  Config source = c.protocol.initial_config({state.range(0)});
  Config target =
      Config::unit(c.protocol.num_states(), c.protocol.states().at("6!"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ppsc::petri::shortest_covering_word(
        c.protocol.net(), source, target, 200000));
  }
}
BENCHMARK(BM_ShortestCoveringWord_Unary)->Arg(6)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
