// E11 — Simulator throughput (google-benchmark).
//
// The repro target: high-throughput agent interaction simulation. Measures
// interactions/second of the agent-array fast path across population sizes
// and protocols, the sharded scheduler's large-population sweep
// (10^6 -> 10^8 agents across shard counts -- the tentpole trajectory:
// the 8-shard arm at 10^7+ agents must hold >= 5x the single-thread
// agent-array items/sec), the census scheduler at populations no agent
// array can hold (10^9), and the count-based scheduler for comparison.
//
// Before any benchmark runs, main() executes the observability overhead
// guard: AgentSimulator compiles its step from one template with the
// metric hooks on or off (sim/scheduler.h), so a single binary holds
// both the instrumented path and the exact machine code a
// -DPPSC_OBS=OFF build produces. The guard measures both interleaved
// and fails the binary when the instrumented median falls more than 5%
// below the bare one -- the "near-zero overhead" claim, enforced on
// every smoke-test run. PPSC_SKIP_OVERHEAD_GUARD=1 bypasses it (for
// heavily loaded or throttled machines).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/constructions.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/census.h"
#include "sim/scheduler.h"
#include "sim/sharded.h"

namespace {

using ppsc::core::Count;

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

bool overhead_guard() {
  const char* skip = std::getenv("PPSC_SKIP_OVERHEAD_GUARD");
  if (skip != nullptr && *skip != '\0') {
    std::fprintf(stderr, "e11 overhead guard: skipped by env\n");
    return true;
  }
  ppsc::obs::MetricRegistry& registry = ppsc::obs::MetricRegistry::global();
  const bool was_enabled = registry.enabled();

  auto c = ppsc::core::unary_counting(8);
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  const ppsc::core::Config initial = c.protocol.initial_config({100000});
  constexpr int kSteps = 1'000'000;
  const auto measure = [&](bool obs) {
    // The obs_ flag is latched at construction, so toggling the registry
    // here selects step_impl<true> or step_impl<false> for the whole run.
    registry.set_enabled(obs);
    ppsc::sim::AgentSimulator simulator(*table, initial, 42);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSteps; ++i) {
      benchmark::DoNotOptimize(simulator.step());
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return static_cast<double>(kSteps) / elapsed.count();
  };

  bool ok = false;
  for (int attempt = 0; attempt < 3 && !ok; ++attempt) {
    measure(false);  // warm-up: page in the agent array, settle the clock
    measure(true);
    std::vector<double> bare, instrumented;
    for (int rep = 0; rep < 5; ++rep) {
      // Interleaved so slow drift (thermal, noisy neighbours) hits both
      // arms alike; the median discards one-off stalls.
      bare.push_back(measure(false));
      instrumented.push_back(measure(true));
    }
    const double bare_med = median(bare);
    const double inst_med = median(instrumented);
    const double delta = (bare_med - inst_med) / bare_med;
    std::fprintf(stderr,
                 "e11 overhead guard: bare %.3e steps/s, instrumented %.3e "
                 "(delta %+.2f%%, attempt %d)\n",
                 bare_med, inst_med, 100.0 * delta, attempt + 1);
    ok = delta < 0.05;
  }
  registry.set_enabled(was_enabled);
  if (!ok) {
    std::fprintf(stderr,
                 "e11 overhead guard: FAILED -- instrumented step path is "
                 ">5%% slower than the bare path in 3 attempts\n");
  }
  return ok;
}

void BM_AgentArray_Unary(benchmark::State& state) {
  auto c = ppsc::core::unary_counting(8);
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  const Count population = state.range(0);
  ppsc::sim::AgentSimulator simulator(
      *table, c.protocol.initial_config({population}), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AgentArray_Unary)
    ->Arg(100)
    ->Arg(10000)
    ->Arg(1000000)
    ->Arg(10000000);

// The tentpole sweep: one population, sharded. Each iteration is one
// epoch (shards * batch draws), so items/sec counts raw draws -- the
// same unit as the agent-array arms. Only deterministic counters are
// attached (bench_compare requires custom counters to be exact).
void BM_Sharded_Unary(benchmark::State& state) {
  auto c = ppsc::core::unary_counting(8);
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  const Count population = state.range(0);
  ppsc::sim::ShardedOptions options;
  options.shards = static_cast<std::size_t>(state.range(1));
  ppsc::sim::ShardedSimulator simulator(
      *table, c.protocol.initial_config({population}), 42, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.epoch());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(simulator.interactions()));
  state.counters["shards"] =
      static_cast<double>(simulator.num_shards());
}
BENCHMARK(BM_Sharded_Unary)
    ->Args({1000000, 8})
    ->Args({10000000, 1})
    ->Args({10000000, 2})
    ->Args({10000000, 4})
    ->Args({10000000, 8})
    ->Args({100000000, 8});

// Census scheduler: population-independent productive steps/sec, at
// populations no agent array can hold. Items count *productive*
// steps; the analytically skipped null draws are what make the path
// cheap, so items/sec here is not comparable to the draw-rate arms.
void BM_Census_Unary(benchmark::State& state) {
  auto c = ppsc::core::unary_counting(8);
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  const Count population = state.range(0);
  ppsc::sim::CensusSimulator simulator(
      *table, c.protocol.initial_config({population}), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(simulator.steps()));
}
BENCHMARK(BM_Census_Unary)
    ->Arg(1000000)
    ->Arg(100000000)
    ->Arg(1000000000);

void BM_AgentArray_Example42(benchmark::State& state) {
  auto c = ppsc::core::example_4_2(state.range(0) / 2);
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  ppsc::sim::AgentSimulator simulator(
      *table, c.protocol.initial_config({state.range(0)}), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AgentArray_Example42)->Arg(1000)->Arg(100000);

void BM_AgentArray_Majority(benchmark::State& state) {
  auto c = ppsc::core::majority();
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  const Count half = state.range(0) / 2;
  ppsc::sim::AgentSimulator simulator(
      *table, c.protocol.initial_config({half + 1, half}), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AgentArray_Majority)->Arg(1000)->Arg(100000);

void BM_CountScheduler_Unary(benchmark::State& state) {
  auto c = ppsc::core::unary_counting(8);
  ppsc::sim::CountSimulator simulator(
      c.protocol, c.protocol.initial_config({state.range(0)}), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CountScheduler_Unary)->Arg(100)->Arg(10000);

void BM_RuleTableBuild(benchmark::State& state) {
  auto c = ppsc::core::unary_counting(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ppsc::sim::PairRuleTable::build(c.protocol));
  }
}
BENCHMARK(BM_RuleTableBuild)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  // PPSC_TRACE_JSON: arm the span tracer before the guard + benchmarks
  // and export after. The guard toggles only the *metric* registry, so
  // tracing stays on across it (AgentSimulator::step has no spans --
  // tracing cannot perturb the overhead measurement).
  if (ppsc::obs::trace_json_env() != nullptr) {
    ppsc::obs::TraceRegistry::global().set_enabled(true);
  }
  if (!overhead_guard()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ppsc::obs::write_trace_if_requested();
  return 0;
}
