// E11 — Simulator throughput (google-benchmark).
//
// The repro target: high-throughput agent interaction simulation. Measures
// interactions/second of the agent-array fast path across population sizes
// and protocols, and the count-based scheduler for comparison.

#include <benchmark/benchmark.h>

#include "core/constructions.h"
#include "sim/scheduler.h"

namespace {

using ppsc::core::Count;

void BM_AgentArray_Unary(benchmark::State& state) {
  auto c = ppsc::core::unary_counting(8);
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  const Count population = state.range(0);
  ppsc::sim::AgentSimulator simulator(
      *table, c.protocol.initial_config({population}), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AgentArray_Unary)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_AgentArray_Example42(benchmark::State& state) {
  auto c = ppsc::core::example_4_2(state.range(0) / 2);
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  ppsc::sim::AgentSimulator simulator(
      *table, c.protocol.initial_config({state.range(0)}), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AgentArray_Example42)->Arg(1000)->Arg(100000);

void BM_AgentArray_Majority(benchmark::State& state) {
  auto c = ppsc::core::majority();
  auto table = ppsc::sim::PairRuleTable::build(c.protocol);
  const Count half = state.range(0) / 2;
  ppsc::sim::AgentSimulator simulator(
      *table, c.protocol.initial_config({half + 1, half}), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AgentArray_Majority)->Arg(1000)->Arg(100000);

void BM_CountScheduler_Unary(benchmark::State& state) {
  auto c = ppsc::core::unary_counting(8);
  ppsc::sim::CountSimulator simulator(
      c.protocol, c.protocol.initial_config({state.range(0)}), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CountScheduler_Unary)->Arg(100)->Arg(10000);

void BM_RuleTableBuild(benchmark::State& state) {
  auto c = ppsc::core::unary_counting(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ppsc::sim::PairRuleTable::build(c.protocol));
  }
}
BENCHMARK(BM_RuleTableBuild)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
