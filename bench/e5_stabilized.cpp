// E5 — Lemma 5.4: stabilized configurations are characterized by their
// small values.
//
// For nets with a "guarded repopulation" structure we search the smallest
// threshold h for which the truncation-closure property holds and compare
// with the paper's h ≥ ‖T‖∞(1+‖T‖∞)^(d^d). The measured minimal h is tiny;
// the lemma's h is a worst-case bound.

#include <cmath>
#include <cstdio>

#include "bounds/formulas.h"
#include "report.h"
#include "util/table.h"
#include "verify/stabilized.h"

int main() {
  using ppsc::petri::Config;
  using ppsc::petri::PetriNet;

  ppsc::bench::Report report("e5_stabilized");
  std::printf("E5: Lemma 5.4 effective thresholds vs formula\n\n");
  ppsc::util::TablePrinter table({"net", "d", "norm T", "stabilized rho",
                                  "min effective h", "log2 formula h"});

  struct Case {
    const char* name;
    PetriNet net;
    std::vector<bool> f_mask;
    Config rho;
  };
  std::vector<Case> cases;

  {
    // 2b -> a + b: one b cannot repopulate a, two can.
    PetriNet net(2);
    net.add(Config{0, 2}, Config{1, 1});
    cases.push_back({"pair-guard", net, {false, true}, Config{0, 1}});
  }
  {
    // 3b -> a + 3b: needs three b's.
    PetriNet net(2);
    net.add(Config{0, 3}, Config{1, 3});
    cases.push_back({"triple-guard", net, {false, true}, Config{0, 2}});
  }
  {
    // c + b -> a + b: c is the guard; rho has no c.
    PetriNet net(3);
    net.add(Config{0, 1, 1}, Config{1, 1, 0});
    cases.push_back({"token-guard", net, {false, true, false}, Config{0, 2, 0}});
  }
  {
    // Two-stage: 2b -> c, c -> a.
    PetriNet net(3);
    net.add(Config{0, 2, 0}, Config{0, 0, 1});
    net.add(Config{0, 0, 1}, Config{1, 0, 0});
    cases.push_back({"two-stage", net, {false, true, false}, Config{0, 1, 0}});
  }

  for (auto& test_case : cases) {
    report.add_items(1);
    bool stabilized = ppsc::verify::is_stabilized(test_case.net, test_case.rho,
                                                  test_case.f_mask);
    auto h = ppsc::verify::minimal_effective_h(
        test_case.net, {test_case.rho}, test_case.f_mask, /*limit=*/8,
        /*probe_height=*/4);
    double formula = ppsc::bounds::log2_lemma54_h(
        static_cast<std::uint64_t>(test_case.net.norm_inf()),
        test_case.net.num_states());
    table.add_row({test_case.name, std::to_string(test_case.net.num_states()),
                   std::to_string(test_case.net.norm_inf()),
                   stabilized ? "yes" : "NO",
                   h.has_value() ? std::to_string(*h) : ">8",
                   ppsc::util::format_double(formula, 4)});
    // The lemma guarantees the formula's h works: minimal h must not exceed
    // it (log2(min h) <= log2(formula) in every case here by orders of
    // magnitude).
    if (h.has_value() && std::log2(static_cast<double>(*h)) > formula) {
      std::printf("VIOLATION in case %s\n", test_case.name);
      return 1;
    }
  }
  table.print();
  return 0;
}
