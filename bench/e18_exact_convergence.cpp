// E18 — Exact expected convergence times vs sampling.
//
// The absorbing-Markov-chain analysis gives ground-truth expected
// interaction counts for small populations; the sampling simulator must
// agree within standard error. Beyond the exact method's range the sampler
// extends the curve — the table shows the handoff.

#include <cstdio>

#include "core/constructions.h"
#include "report.h"
#include "sim/expected_time.h"
#include "sim/parallel.h"
#include "util/table.h"

int main() {
  ppsc::bench::Report report("e18_exact_convergence");
  using ppsc::core::Count;

  std::printf("E18: exact (Markov) vs sampled expected interactions\n\n");
  ppsc::util::TablePrinter table({"protocol", "population", "reachable",
                                  "exact E[steps]", "sampled mean (200 runs)",
                                  "rel. diff"});

  struct Job {
    ppsc::core::ConstructedProtocol constructed;
    Count population;
  };
  std::vector<Job> jobs;
  for (Count population : {4, 6, 8}) {
    jobs.push_back({ppsc::core::unary_counting(3), population});
  }
  jobs.push_back({ppsc::core::threshold_belief(3), 6});
  jobs.push_back({ppsc::core::binary_counting(4), 6});

  for (auto& job : jobs) {
    auto exact = ppsc::sim::expected_interactions_to_silence(
        job.constructed.protocol, {job.population}, 3000);

    ppsc::sim::RunOptions options;
    options.silence_check_interval = 1;
    auto sampled = ppsc::sim::measure_convergence_parallel(
        job.constructed, {job.population}, 200, options);
    report.add_items(201);

    std::string exact_text = exact.computed
                                 ? ppsc::util::format_double(
                                       exact.expected_steps, 6)
                                 : "(state space too large)";
    std::string diff = "-";
    if (exact.computed && exact.expected_steps > 0.0) {
      diff = ppsc::util::format_double(
                 100.0 * (sampled.mean_steps - exact.expected_steps) /
                     exact.expected_steps,
                 2) +
             "%";
    }
    table.add_row({job.constructed.family, std::to_string(job.population),
                   std::to_string(exact.reachable_configs), exact_text,
                   ppsc::util::format_double(sampled.mean_steps, 6), diff});
  }

  // Majority on a two-dimensional input.
  {
    auto c = ppsc::core::majority();
    auto exact = ppsc::sim::expected_interactions_to_silence(c.protocol,
                                                             {3, 2}, 3000);
    ppsc::sim::RunOptions options;
    options.silence_check_interval = 1;
    auto sampled =
        ppsc::sim::measure_convergence_parallel(c, {3, 2}, 200, options);
    report.add_items(201);
    table.add_row({"majority {3,2}", "5",
                   std::to_string(exact.reachable_configs),
                   ppsc::util::format_double(exact.expected_steps, 6),
                   ppsc::util::format_double(sampled.mean_steps, 6),
                   ppsc::util::format_double(
                       100.0 * (sampled.mean_steps - exact.expected_steps) /
                           exact.expected_steps,
                       2) + "%"});
  }
  table.print();

  std::printf(
      "\nSampled means track the exact expectations within sampling error —\n"
      "the simulator implements the uniform-pair distribution faithfully,\n"
      "not just the right consensus.\n");
  return 0;
}
