// E9 — Theorem 4.3: the proof pipeline executed end-to-end.
//
// The lower-bound proof (Section 8) runs: Theorem 6.1 on T|P' from the
// leader configuration → a bottom component → the control-state net of that
// component → a total cycle (Lemma 7.2) → a multicycle with large Parikh
// image → a small sign-compatible replacement (Lemma 7.3) → a pumping
// argument contradicting stability unless n ≤ (4+4w+2|ρ_L|)^(d(d+2)²).
//
// This binary executes each stage on (a) Example 4.2 instances — the
// protocol the paper's Section 4 analyzes — and (b) a crafted net with a
// non-trivial bottom component, where every stage is exercised
// non-degenerately. It finishes with the numeric bound table.

#include <cmath>
#include <cstdio>

#include "bounds/formulas.h"
#include "core/constructions.h"
#include "petri/bottom.h"
#include "petri/control_net.h"
#include "petri/euler.h"
#include "report.h"
#include "solver/multicycle.h"
#include "util/table.h"

namespace {

using ppsc::petri::Config;
using ppsc::petri::ControlStateNet;
using ppsc::petri::PetriNet;

struct PipelineRow {
  std::string name;
  std::string component;
  std::string edges;
  std::string total_cycle;
  std::string replacement;
  std::string verdict;
};

PipelineRow run_pipeline(const std::string& name, const PetriNet& net,
                         const Config& rho) {
  PipelineRow row{name, "-", "-", "-", "-", "incomplete"};

  // Stage 1: Theorem 6.1 witness.
  ppsc::petri::ExploreLimits limits;
  limits.max_nodes = 200000;
  auto witness = ppsc::petri::find_bottom_witness(net, rho, limits);
  if (!witness.has_value()) {
    row.verdict = "no bottom witness";
    return row;
  }
  if (!ppsc::petri::check_bottom_witness(net, rho, *witness, limits)) {
    row.verdict = "witness replay FAILED";
    return row;
  }

  // Stage 2: component control net.
  PetriNet restricted = net.restrict(witness->q_mask);
  auto component = ppsc::petri::component_of(
      restricted, witness->alpha.restrict(witness->q_mask), limits);
  row.component = std::to_string(component.members.size());
  auto cnet =
      ControlStateNet::from_component(net, component.members, witness->q_mask);
  row.edges = std::to_string(cnet.num_edges());
  if (cnet.num_edges() == 0) {
    row.total_cycle = "empty";
    row.replacement = "trivial";
    row.verdict = "degenerate (silent bottom)";
    return row;
  }
  if (!cnet.strongly_connected()) {
    row.verdict = "component not strongly connected?";
    return row;
  }

  // Stage 3: Lemma 7.2 total cycle.
  auto total = cnet.total_cycle(0);
  if (!total.has_value()) {
    row.verdict = "no total cycle";
    return row;
  }
  row.total_cycle = std::to_string(total->size()) + " <= " +
                    std::to_string(cnet.num_edges() * cnet.num_controls());

  // Stage 4: a large multicycle (ℓ copies of the total cycle) and its
  // Lemma 7.3 replacement with Q = the witness's Q.
  const std::uint64_t ell = 64;
  auto parikh = cnet.parikh(*total);
  for (auto& count : parikh) count *= ell;
  std::vector<bool> q_on_places(net.num_states(), false);
  for (std::size_t p = 0; p < net.num_states(); ++p) {
    q_on_places[p] = witness->q_mask[p];
  }
  auto replacement =
      ppsc::solver::small_multicycle(cnet, parikh, q_on_places, /*k=*/ell);
  if (!replacement.has_value()) {
    row.replacement = "n/a (k hypothesis)";
    row.verdict = "pipeline ok (no replacement needed)";
    return row;
  }
  row.replacement = std::to_string(replacement->length);
  row.verdict = "pipeline ok";
  return row;
}

}  // namespace

int main() {
  ppsc::bench::Report report("e9_theorem43");
  std::printf("E9: Theorem 4.3 proof pipeline, stage by stage\n\n");

  ppsc::util::TablePrinter table({"instance", "|component|", "|E|",
                                  "|total cycle| vs bound", "|Theta'|",
                                  "verdict"});

  // (a) Example 4.2 instances: Section 8 applies Theorem 6.1 to T|P' from
  // the leader configuration (P' = P \ I).
  for (ppsc::core::Count n : {2, 3}) {
    auto c = ppsc::core::example_4_2(n);
    std::vector<bool> mask(c.protocol.num_states(), true);
    mask[c.protocol.states().at("X")] = false;
    auto row = run_pipeline("example42 n=" + std::to_string(n),
                            PetriNet(c.protocol.net()).restrict(mask),
                            Config(c.protocol.leaders()).restrict(mask));
    report.add_items(1);
    table.add_row({row.name, row.component, row.edges, row.total_cycle,
                   row.replacement, row.verdict});
  }

  // (b) Crafted net with a non-trivial bottom: toggle {a,b} + pump c.
  {
    PetriNet net(3);
    net.add(Config{1, 0, 0}, Config{0, 1, 0});
    net.add(Config{0, 1, 0}, Config{1, 0, 0});
    net.add(Config{1, 0, 0}, Config{1, 0, 1});
    auto row = run_pipeline("toggle+pump", net, Config{1, 0, 0});
    report.add_items(1);
    table.add_row({row.name, row.component, row.edges, row.total_cycle,
                   row.replacement, row.verdict});
  }
  // (c) Bigger toggle ring with pump.
  {
    PetriNet net(4);
    net.add(Config{1, 0, 0, 0}, Config{0, 1, 0, 0});
    net.add(Config{0, 1, 0, 0}, Config{0, 0, 1, 0});
    net.add(Config{0, 0, 1, 0}, Config{1, 0, 0, 0});
    net.add(Config{0, 1, 0, 0}, Config{0, 1, 0, 1});
    auto row = run_pipeline("ring3+pump", net, Config{1, 0, 0, 0});
    report.add_items(1);
    table.add_row({row.name, row.component, row.edges, row.total_cycle,
                   row.replacement, row.verdict});
  }
  table.print();

  // Numeric bound: what Theorem 4.3 says about Example 4.2's parameters.
  std::printf("\nTheorem 4.3 bound n <= (4+4w+2L)^(d(d+2)^2):\n\n");
  ppsc::util::TablePrinter bound_table(
      {"protocol", "d", "width", "leaders", "log2 bound", "log2 n", "holds"});
  for (ppsc::core::Count n : {4, 16, 256, 65536}) {
    report.add_items(1);
    auto c = ppsc::core::example_4_2(n);
    double log2_bound = ppsc::bounds::log2_theorem43_bound(
        static_cast<std::uint64_t>(c.protocol.width()),
        static_cast<std::uint64_t>(c.protocol.num_leaders()),
        c.protocol.num_states());
    double log2_n = std::log2(static_cast<double>(n));
    bound_table.add_row(
        {"example42 n=" + std::to_string(n),
         std::to_string(c.protocol.num_states()),
         std::to_string(c.protocol.width()),
         std::to_string(c.protocol.num_leaders()),
         ppsc::util::format_double(log2_bound, 5),
         ppsc::util::format_double(log2_n, 4),
         log2_n <= log2_bound ? "yes" : "NO"});
  }
  bound_table.print();

  std::printf(
      "\nExample 4.2 respects the bound because its leader count grows with\n"
      "n: with bounded leaders AND bounded width, the theorem forces the\n"
      "state count up at rate (log log n)^h (see E10).\n");
  return 0;
}
