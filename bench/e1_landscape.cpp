// E1 — State-complexity landscape for the counting predicate (i ≥ n).
//
// Reproduces the figure-equivalent of the paper's Section 4 narrative: the
// measured state counts of the implemented protocol families against the
// paper's lower bound (Corollary 4.4) and the upper-bound shapes of
// Blondin–Esparza–Jaax [6]. Families with O(1) states pay with width
// (Example 4.1) or leaders (Example 4.2), which is exactly why Section 4
// argues the state count alone is meaningless unless width and leaders are
// bounded.

#include <cmath>
#include <cstdio>

#include "bounds/formulas.h"
#include "core/constructions.h"
#include "report.h"
#include "util/table.h"
#include "verify/stable.h"

int main() {
  ppsc::bench::Report report("e1_landscape");
  using ppsc::core::Count;
  namespace bounds = ppsc::bounds;

  std::printf(
      "E1: states needed to decide (i >= n), measured families vs bounds\n"
      "    lower = Corollary 4.4 with h=0.49, m=2; upper shapes from [BEJ18]\n\n");

  ppsc::util::TablePrinter table(
      {"n", "family", "states", "width", "leaders", "verified",
       "cor4.4(h=.49)", "loglog n", "log n"});

  for (Count n : {2, 4, 8, 16, 32}) {
    const double log2_n = std::log2(static_cast<double>(n));
    auto families = ppsc::core::counting_families(n);
    for (auto& family : families) {
      report.add_items(1);
      // Exhaustive verification is feasible for small n only; report it
      // where run, "-" where skipped.
      std::string verified = "-";
      if (n <= 4 || (family.protocol.num_states() <= 8 && n <= 8)) {
        auto result =
            ppsc::verify::check_up_to(family.protocol, family.predicate, n + 2);
        verified = result.verified() ? "yes" : "NO";
      }
      table.add_row(
          {std::to_string(n), family.family,
           std::to_string(family.protocol.num_states()),
           std::to_string(family.protocol.width()),
           std::to_string(family.protocol.num_leaders()), verified,
           ppsc::util::format_double(
               bounds::corollary44_lower_bound(log2_n, 2, 0.49), 3),
           ppsc::util::format_double(bounds::bej_loglog_states(log2_n), 3),
           ppsc::util::format_double(bounds::bej_log_states(log2_n), 3)});
    }
  }
  table.print();

  std::printf(
      "\nShape check: binary family tracks log n; Example 4.1/4.2 stay O(1)\n"
      "states but need width n / n leaders; the paper's lower bound says no\n"
      "bounded-width bounded-leader family can beat (log log n)^h states.\n");
  return 0;
}
