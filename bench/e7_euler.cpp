// E7 — Lemma 7.2: total cycles of length ≤ |E|·|S|.
//
// Random strongly connected control nets: build the total multicycle (one
// simple cycle per edge), merge by the Euler lemma, and check the length of
// the resulting total cycle against |E|·|S|.

#include <cstdio>

#include "petri/control_net.h"
#include "report.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using ppsc::petri::Config;
using ppsc::petri::ControlStateNet;
using ppsc::petri::PetriNet;

/// Random strongly connected control net: a ring plus random chords.
ControlStateNet random_control_net(std::size_t controls, std::size_t chords,
                                   ppsc::util::Xoshiro256& rng) {
  PetriNet net(2);
  net.add(Config{1, 0}, Config{0, 1});
  net.add(Config{0, 1}, Config{1, 0});
  ControlStateNet cnet(net, controls);
  for (std::uint32_t s = 0; s < controls; ++s) {
    cnet.add_edge(s, rng.below(2), (s + 1) % static_cast<std::uint32_t>(controls));
  }
  for (std::size_t c = 0; c < chords; ++c) {
    auto from = static_cast<std::uint32_t>(rng.below(controls));
    auto to = static_cast<std::uint32_t>(rng.below(controls));
    cnet.add_edge(from, rng.below(2), to);
  }
  return cnet;
}

}  // namespace

int main() {
  ppsc::bench::Report report("e7_euler");
  std::printf("E7: total cycle construction vs |E|*|S| (Lemma 7.2)\n\n");
  ppsc::util::TablePrinter table({"|S|", "|E|", "trials", "max |theta|",
                                  "bound |E||S|", "total", "holds"});

  ppsc::util::Xoshiro256 rng(7);
  for (std::size_t controls : {2, 4, 8, 16}) {
    for (std::size_t chords : {1ul, controls}) {
      std::size_t worst = 0;
      std::size_t bound = 0;
      std::size_t edges = 0;
      bool all_total = true;
      bool all_hold = true;
      const int kTrials = 25;
      report.add_items(kTrials);
      for (int trial = 0; trial < kTrials; ++trial) {
        auto cnet = random_control_net(controls, chords, rng);
        edges = cnet.num_edges();
        bound = cnet.num_edges() * cnet.num_controls();
        auto cycle = cnet.total_cycle(0);
        if (!cycle.has_value()) {
          all_total = false;
          continue;
        }
        worst = std::max(worst, cycle->size());
        if (cycle->size() > bound) all_hold = false;
        // Totality: every edge appears.
        auto parikh = cnet.parikh(*cycle);
        for (std::uint64_t count : parikh) {
          if (count == 0) all_total = false;
        }
        // It must be an actual cycle on the anchor.
        if (!cnet.is_cycle(*cycle, 0)) all_hold = false;
      }
      table.add_row({std::to_string(controls), std::to_string(edges),
                     std::to_string(kTrials), std::to_string(worst),
                     std::to_string(bound), all_total ? "yes" : "NO",
                     all_hold ? "yes" : "NO"});
    }
  }
  table.print();
  return 0;
}
