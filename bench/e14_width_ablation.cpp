// E14 — Ablation: the width/state trade-off made explicit.
//
// Section 4's message is that 2 states suffice if width may grow with n
// (Example 4.1). This experiment compiles Example 4.1's width-n net to
// width 2 and counts what the compilation costs in places and transitions —
// the other side of the trade-off the paper's lower bound quantifies. The
// projection-equivalence of each compilation is re-checked on the spot.

#include <cstdio>
#include <set>

#include "core/constructions.h"
#include "petri/reachability.h"
#include "petri/width_reduction.h"
#include "report.h"
#include "util/table.h"

namespace {

using ppsc::petri::Config;
using ppsc::petri::Count;
using ppsc::petri::PetriNet;

bool equivalent(const PetriNet& net, const ppsc::petri::WidthReduction& red,
                const Config& root) {
  std::set<std::vector<Count>> original;
  {
    auto graph = ppsc::petri::explore(net, {root});
    if (graph.truncated) return false;
    for (const auto& node : graph.nodes) original.insert(node.raw());
  }
  std::set<std::vector<Count>> compiled;
  {
    auto graph = ppsc::petri::explore(red.compiled, {red.embed(root)});
    if (graph.truncated) return false;
    for (const auto& node : graph.nodes) {
      compiled.insert(red.project(red.cleanup(node)).raw());
    }
  }
  return original == compiled;
}

}  // namespace

int main() {
  ppsc::bench::Report report("e14_width_ablation");
  std::printf("E14: compiling width-n counting to width 2\n\n");
  ppsc::util::TablePrinter table({"n", "places", "transitions", "width",
                                  "->", "places'", "transitions'", "width'",
                                  "equivalent"});

  for (Count n = 2; n <= 6; ++n) {
    auto c = ppsc::core::example_4_1(n);
    const PetriNet& net = c.protocol.net();
    auto reduction = ppsc::petri::widen_to_width2(net);
    report.add_items(1);

    Config root(2);
    root[0] = n + 1;  // above threshold: the interesting dynamics
    bool ok = equivalent(net, reduction, root);

    table.add_row({std::to_string(n), std::to_string(net.num_states()),
                   std::to_string(net.num_transitions()),
                   std::to_string(net.max_width()), "",
                   std::to_string(reduction.compiled.num_states()),
                   std::to_string(reduction.compiled.num_transitions()),
                   std::to_string(reduction.compiled.max_width()),
                   ok ? "yes" : "NO"});
  }
  table.print();

  std::printf(
      "\nThe compiled nets pay Θ(n²) collector places for Example 4.1's n\n"
      "width-n transitions — the width budget converts into a place budget,\n"
      "exactly the currency exchange Section 4 warns about. (This transform\n"
      "is Petri-net-level; protocol-level width reduction additionally\n"
      "requires an output discipline for auxiliary states, cf. [5].)\n");
  return 0;
}
