// E2 — Example 4.1: the 2-state protocol with interaction-width n.
//
// Validates the paper's claim exactly: the protocol stably computes
// (i ≥ n), uses precisely 2 states and n transitions, and its preorder has
// interaction-width exactly n (no smaller-width Petri net realizes it).

#include <cstdio>

#include "core/constructions.h"
#include "report.h"
#include "util/table.h"
#include "verify/stable.h"

int main() {
  ppsc::bench::Report report("e2_example41");
  using ppsc::core::Count;

  std::printf("E2: Example 4.1 (2 states, width n, leaderless)\n\n");
  ppsc::util::TablePrinter table({"n", "states", "width", "transitions",
                                  "inputs checked", "reachable configs",
                                  "stably computes"});

  for (Count n = 1; n <= 7; ++n) {
    auto c = ppsc::core::example_4_1(n);
    auto result = ppsc::verify::check_up_to(c.protocol, c.predicate, n + 4);
    report.add_items(static_cast<double>(result.verdicts.size()));
    std::size_t reachable = 0;
    for (const auto& verdict : result.verdicts) {
      reachable += verdict.reachable_configs;
    }
    table.add_row({std::to_string(n),
                   std::to_string(c.protocol.num_states()),
                   std::to_string(c.protocol.width()),
                   std::to_string(c.protocol.net().num_transitions()),
                   std::to_string(result.verdicts.size()),
                   std::to_string(reachable),
                   result.verified() ? "yes" : "NO"});
  }
  table.print();

  std::printf(
      "\nPaper: width(->*) = n for this protocol; measured widths match.\n");
  return 0;
}
