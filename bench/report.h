// Uniform machine-readable reporting for the hand-rolled (non
// google-benchmark) bench drivers.
//
// Usage: construct one Report at the top of main. When the
// PPSC_BENCH_JSON environment variable names a path, the constructor
// enables the obs metric registry and the destructor writes
//
//   {"bench": <name>, "git_rev": <rev>, "threads": <hw threads>,
//    "obs_compiled": <bool>, "wall_ms": <main wall time>,
//    "items_per_sec": <items/s or 0>, "counters": {...},
//    "histograms": {...}}
//
// to that path -- and nothing anywhere else. stdout belongs to the
// bench tables alone (the e2/e3/e17 golden transcripts diff stdout
// byte-for-byte, with PPSC_BENCH_JSON set), so this header never
// prints except to stderr on a write failure. Without PPSC_BENCH_JSON
// the Report is inert: no registry toggle, no file, no timing output.
//
// The metadata keys after `bench` are deliberately wall-clock-free:
// git_rev, thread count, and the compiled PPSC_OBS state identify a
// measurement environment reproducibly (scripts/bench_compare.py
// keys on them); timestamps would make every regeneration a diff.
//
// `counters` holds every registry counter (sorted keys) plus a
// flattened `<histogram>.count/.sum/.max` triple per histogram, so
// downstream tooling can treat the report as one flat numeric map;
// full bucket detail plus derived p50/p90/p99 quantile estimates stay
// available under `histograms`. The schema keys
// bench/git_rev/threads/obs_compiled/wall_ms/items_per_sec/counters
// are validated by scripts/bench_report.sh and pinned by
// tests/test_obs.cpp.
//
// Independently, when PPSC_TRACE_JSON names a path the constructor
// enables the span trace registry (obs/trace.h) and the destructor
// exports the collected spans as Chrome trace-event JSON there --
// every hand-rolled bench gets a Perfetto-loadable trace for free.
//
// e11/e13 are google-benchmark binaries and do not use this header;
// their JSON comes from --benchmark_out=json (same script, same
// BENCH_<name>.json naming) and their mains handle PPSC_TRACE_JSON
// explicitly.

#ifndef PPSC_BENCH_REPORT_H
#define PPSC_BENCH_REPORT_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef PPSC_GIT_REV
#define PPSC_GIT_REV "unknown"
#endif

namespace ppsc {
namespace bench {

class Report {
 public:
  explicit Report(const char* name)
      : name_(name), start_(std::chrono::steady_clock::now()) {
    const char* path = std::getenv("PPSC_BENCH_JSON");
    if (path != nullptr && *path != '\0') {
      path_ = path;
      obs::MetricRegistry::global().set_enabled(true);
    }
    if (obs::trace_json_env() != nullptr) {
      obs::TraceRegistry::global().set_enabled(true);
    }
  }

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  // Work items this bench processed (rows, runs, inputs, steps --
  // whatever the bench's natural unit is); feeds items_per_sec.
  void add_items(double items) { items_ += items; }

  ~Report() {
    // The trace export is independent of the metric report: a bench
    // run may ask for either or both. Bench mains are single-threaded
    // at destruction time (sweep workers joined), the documented
    // export contract.
    obs::write_trace_if_requested();
    if (path_.empty()) return;
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start_;
    const double wall_ms = elapsed.count();
    const double items_per_sec =
        wall_ms > 0.0 ? items_ / (wall_ms / 1000.0) : 0.0;
    const obs::MetricSnapshot snapshot =
        obs::MetricRegistry::global().snapshot();

    obs::JsonWriter json;
    json.begin_object();
    json.key("bench").value(name_);
    json.key("git_rev").value(PPSC_GIT_REV);
    json.key("threads").value(static_cast<std::uint64_t>(
        std::thread::hardware_concurrency()));
    json.key("obs_compiled").value(PPSC_OBS_ENABLED != 0);
    json.key("wall_ms").value(wall_ms);
    json.key("items_per_sec").value(items_per_sec);
    json.key("counters").begin_object();
    for (const auto& entry : snapshot.counters) {
      json.key(entry.first).value(entry.second);
    }
    for (const auto& entry : snapshot.histograms) {
      json.key(entry.first + ".count").value(entry.second.count);
      json.key(entry.first + ".sum").value(entry.second.sum);
      json.key(entry.first + ".max").value(entry.second.max);
    }
    json.end_object();
    json.key("histograms").begin_object();
    for (const auto& entry : snapshot.histograms) {
      const obs::Histogram& h = entry.second;
      json.key(entry.first).begin_object();
      json.key("count").value(h.count);
      json.key("sum").value(h.sum);
      json.key("max").value(h.max);
      json.key("p50").value(h.quantile(0.5));
      json.key("p90").value(h.quantile(0.9));
      json.key("p99").value(h.quantile(0.99));
      json.key("buckets").begin_array();
      for (std::size_t b = 0; b < obs::Histogram::kBuckets; ++b) {
        if (h.buckets[b] == 0) continue;
        const std::uint64_t lower = b == 0 ? 0 : (1ull << (b - 1));
        json.begin_array().value(lower).value(h.buckets[b]).end_array();
      }
      json.end_array();
      json.end_object();
    }
    json.end_object();
    json.end_object();

    std::FILE* file = std::fopen(path_.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "bench::Report: cannot open %s\n", path_.c_str());
      return;
    }
    std::fputs(json.str().c_str(), file);
    std::fputc('\n', file);
    std::fclose(file);
  }

 private:
  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
  double items_ = 0.0;
};

}  // namespace bench
}  // namespace ppsc

#endif  // PPSC_BENCH_REPORT_H
