// E16 — Well-specification: extracting the computed predicate.
//
// The paper's introduction recalls that well-specification is as hard as
// Petri-net reachability (Ackermann-complete) in general. On bounded
// inputs the library decides it exactly: this experiment extracts the
// predicate each construction computes — without being told what it is —
// and rejects deliberately ill-specified protocols.

#include <cstdio>

#include "core/constructions.h"
#include "report.h"
#include "util/table.h"
#include "verify/wellspec.h"

int main() {
  using ppsc::core::Count;

  ppsc::bench::Report report("e16_wellspec");
  std::printf("E16: well-specification and predicate extraction\n\n");
  ppsc::util::TablePrinter table({"protocol", "inputs", "well-specified",
                                  "extracted values (x=0,1,2,...)",
                                  "matches intended"});

  struct Job {
    std::string name;
    ppsc::core::ConstructedProtocol constructed;
    Count bound;
  };
  std::vector<Job> jobs;
  jobs.push_back({"unary(3)", ppsc::core::unary_counting(3), 6});
  jobs.push_back({"binary(4)", ppsc::core::binary_counting(4), 7});
  jobs.push_back({"example42(2)", ppsc::core::example_4_2(2), 5});
  jobs.push_back({"modulo(3,1)", ppsc::core::modulo_counting(3, 1), 7});
  jobs.push_back({"threshold{1,2}>=3",
                  ppsc::core::weighted_threshold({1, 2}, 3), 4});

  for (auto& job : jobs) {
    auto result = ppsc::verify::check_well_specification_up_to(
        job.constructed.protocol, job.bound);
    report.add_items(static_cast<double>(result.verdicts.size()));
    std::string values;
    bool matches = true;
    for (const auto& verdict : result.verdicts) {
      if (verdict.input.size() != 1) {
        values = "(multi-dim)";
        break;
      }
      values += verdict.value.has_value() ? (*verdict.value ? "1" : "0") : "?";
      if (!verdict.value.has_value() ||
          *verdict.value != job.constructed.predicate(verdict.input)) {
        matches = false;
      }
    }
    if (values == "(multi-dim)") {
      matches = true;
      for (const auto& verdict : result.verdicts) {
        if (!verdict.value.has_value() ||
            *verdict.value != job.constructed.predicate(verdict.input)) {
          matches = false;
        }
      }
    }
    table.add_row({job.name, std::to_string(result.verdicts.size()),
                   result.verified() ? "yes" : "NO", values,
                   matches ? "yes" : "NO"});
  }

  // An ill-specified protocol: racy double consensus.
  {
    ppsc::core::ProtocolBuilder builder;
    builder.state("i", ppsc::core::Output::kZero);
    builder.state("Y", ppsc::core::Output::kOne);
    builder.state("N", ppsc::core::Output::kZero);
    builder.initial("i");
    builder.rule("i + i -> Y + Y");
    builder.rule("i + i -> N + N");
    builder.rule("Y + i -> Y + Y");
    builder.rule("N + i -> N + N");
    auto racy = builder.build();
    auto result = ppsc::verify::check_well_specification_up_to(racy, 5);
    report.add_items(static_cast<double>(result.verdicts.size()));
    std::string values;
    for (const auto& verdict : result.verdicts) {
      values += verdict.value.has_value() ? (*verdict.value ? "1" : "0") : "?";
    }
    table.add_row({"racy consensus", std::to_string(result.verdicts.size()),
                   result.verified() ? "yes" : "NO", values, "-"});
  }
  table.print();

  std::printf(
      "\nThe extracted predicates coincide with the intended ones on every\n"
      "well-specified protocol; the racy protocol is rejected with '?' on\n"
      "exactly the inputs whose consensus depends on the schedule.\n");
  return 0;
}
