// E3 — Example 4.2: 6 states, width 2, n leaders.
//
// Exhaustive verification for small n (the verifier materializes the full
// reachability graph) and simulation to silence for larger n, checking the
// consensus answers the counting predicate on both sides of the boundary.

#include <cstdio>

#include "core/constructions.h"
#include "report.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "verify/stable.h"

int main() {
  ppsc::bench::Report report("e3_example42");
  using ppsc::core::Count;

  std::printf("E3: Example 4.2 (6 states, width 2, n leaders)\n\n");

  std::printf("Exhaustive verification (all inputs x <= n+2):\n");
  ppsc::util::TablePrinter exact({"n", "leaders", "inputs", "max reachable",
                                  "stably computes"});
  for (Count n = 1; n <= 4; ++n) {
    auto c = ppsc::core::example_4_2(n);
    auto result = ppsc::verify::check_up_to(c.protocol, c.predicate, n + 2);
    report.add_items(static_cast<double>(result.verdicts.size()));
    std::size_t max_reachable = 0;
    for (const auto& verdict : result.verdicts) {
      max_reachable = std::max(max_reachable, verdict.reachable_configs);
    }
    exact.add_row({std::to_string(n), std::to_string(c.protocol.num_leaders()),
                   std::to_string(result.verdicts.size()),
                   std::to_string(max_reachable),
                   result.verified() ? "yes" : "NO"});
  }
  exact.print();

  std::printf("\nSimulation at the predicate boundary (runs = 5, step cap 2e6):\n");
  ppsc::util::TablePrinter sim({"n", "x", "expected", "converged", "correct",
                                "mean steps"});
  for (Count n : {8, 16, 32}) {
    auto c = ppsc::core::example_4_2(n);
    for (Count x : {n - 1, n, n + 1}) {
      ppsc::sim::RunOptions options;
      options.max_steps = 2'000'000;
      auto stats = ppsc::sim::measure_convergence(c, {x}, 5, options);
      report.add_items(5);
      sim.add_row({std::to_string(n), std::to_string(x),
                   c.predicate({x}) ? "1" : "0",
                   std::to_string(stats.converged) + "/5",
                   std::to_string(stats.correct) + "/5",
                   ppsc::util::format_double(stats.mean_steps, 4)});
    }
  }
  sim.print();

  std::printf(
      "\nNote the asymmetry: accepting runs (x >= n) silence quickly, while\n"
      "rejecting runs (x = n-1) rarely silence within the budget. This is a\n"
      "genuine property of Example 4.2: with a single surplus leader the\n"
      "bar/unbar race is biased against the 0-consensus, so the uniform\n"
      "random scheduler needs enormously many interactions even though the\n"
      "protocol stably computes the predicate under fairness (the exhaustive\n"
      "table above proves the 0-consensus stays reachable from everywhere).\n"
      "Stable computation bounds say nothing about convergence *time*.\n");
  return 0;
}
