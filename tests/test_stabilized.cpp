// verify/stabilized: backward-coverability stabilization certificates
// and the empirical Lemma 5.4 threshold search, pinned on the E5 nets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "bounds/formulas.h"
#include "verify/stabilized.h"

namespace verify = ppsc::verify;
using ppsc::petri::Config;
using ppsc::petri::PetriNet;

namespace {

// The E5 "pair-guard" net: 2b -> a + b, accepting state b.
PetriNet pair_guard() {
  PetriNet net(2);
  net.add(Config{0, 2}, Config{1, 1});
  return net;
}

}  // namespace

TEST(Stabilized, PairGuardVerdicts) {
  const PetriNet net = pair_guard();
  const std::vector<bool> f_mask{false, true};
  // One lone b can never repopulate a; two can, and a marked a is
  // already outside F.
  EXPECT_TRUE(verify::is_stabilized(net, Config{0, 1}, f_mask));
  EXPECT_FALSE(verify::is_stabilized(net, Config{0, 2}, f_mask));
  EXPECT_FALSE(verify::is_stabilized(net, Config{1, 0}, f_mask));
  EXPECT_TRUE(verify::is_stabilized(net, Config{0, 0}, f_mask));
}

TEST(Stabilized, PairGuardCertificateBasis) {
  const PetriNet net = pair_guard();
  const auto certificate =
      verify::stabilization_certificate(net, {false, true});
  ASSERT_EQ(certificate.bad_states, (std::vector<std::size_t>{0}));
  ASSERT_EQ(certificate.bases.size(), 1u);
  // Markings from which a is coverable: a already marked, or two b's.
  std::vector<Config> basis = certificate.bases[0];
  std::sort(basis.begin(), basis.end());
  EXPECT_EQ(basis, (std::vector<Config>{Config{0, 2}, Config{1, 0}}));
}

TEST(Stabilized, RejectsMaskSizeMismatch) {
  const PetriNet net = pair_guard();
  EXPECT_THROW(verify::is_stabilized(net, Config{0, 1}, {false}),
               std::invalid_argument);
}

TEST(Stabilized, MinimalEffectiveHMatchesHandComputedThresholds) {
  struct Case {
    const char* name;
    PetriNet net;
    std::vector<bool> f_mask;
    Config rho;
    std::uint64_t expected_h;
  };
  std::vector<Case> cases;
  cases.push_back({"pair-guard", pair_guard(), {false, true}, Config{0, 1},
                   2});
  {
    PetriNet net(2);
    net.add(Config{0, 3}, Config{1, 3});
    cases.push_back({"triple-guard", net, {false, true}, Config{0, 2}, 3});
  }
  {
    PetriNet net(3);
    net.add(Config{0, 1, 1}, Config{1, 1, 0});
    cases.push_back(
        {"token-guard", net, {false, true, false}, Config{0, 2, 0}, 1});
  }
  {
    PetriNet net(3);
    net.add(Config{0, 2, 0}, Config{0, 0, 1});
    net.add(Config{0, 0, 1}, Config{1, 0, 0});
    cases.push_back(
        {"two-stage", net, {false, true, false}, Config{0, 1, 0}, 2});
  }
  for (const Case& test_case : cases) {
    const auto h = verify::minimal_effective_h(
        test_case.net, {test_case.rho}, test_case.f_mask, /*limit=*/8,
        /*probe_height=*/4);
    ASSERT_TRUE(h.has_value()) << test_case.name;
    EXPECT_EQ(*h, test_case.expected_h) << test_case.name;
    // Lemma 5.4's formula threshold dominates the measured one.
    const double formula = ppsc::bounds::log2_lemma54_h(
        static_cast<std::uint64_t>(test_case.net.norm_inf()),
        test_case.net.num_states());
    EXPECT_LE(std::log2(static_cast<double>(*h)), formula) << test_case.name;
  }
}

TEST(Stabilized, MinimalEffectiveHLimitTooSmall) {
  const PetriNet net = pair_guard();
  const auto h = verify::minimal_effective_h(net, {Config{0, 1}},
                                             {false, true}, /*limit=*/1,
                                             /*probe_height=*/4);
  EXPECT_FALSE(h.has_value());
}

TEST(Stabilized, MinimalEffectiveHRejectsOversizedProbeBox) {
  // 13 places: (1 + 4 + 1)^13 probe configurations blow the 2^24 cap.
  PetriNet net(13);
  Config pre(13);
  Config post(13);
  pre[0] = 2;
  post[1] = 1;
  net.add(pre, post);
  std::vector<bool> f_mask(13, true);
  f_mask[1] = false;
  EXPECT_THROW(verify::minimal_effective_h(net, {}, f_mask, /*limit=*/1,
                                           /*probe_height=*/4),
               std::invalid_argument);
}
