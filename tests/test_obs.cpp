// Observability subsystem: counter/timer/histogram semantics, the
// hand-rolled JSON writer, merge determinism of the registry, the
// engine stat structs, and the bench/report.h schema.
//
// Registry tests run against the process-global MetricRegistry (that
// is the object the engines publish to), so each one starts with
// reset() and leaves the registry disabled.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/constructions.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "petri/coverability.h"
#include "petri/petri_net.h"
#include "petri/reachability.h"
#include "report.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

namespace {

using ppsc::obs::Histogram;
using ppsc::obs::JsonWriter;
using ppsc::obs::MetricRegistry;
using ppsc::obs::MetricSnapshot;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of((1ull << 32) - 1), 32u);
  EXPECT_EQ(Histogram::bucket_of(1ull << 32), 33u);
  EXPECT_EQ(Histogram::bucket_of(~0ull), 63u);
}

TEST(ObsHistogram, RecordAccumulates) {
  Histogram h;
  h.record(0);
  h.record(5);
  h.record(5);
  h.record(100);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 110u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_EQ(h.buckets[0], 1u);               // the 0
  EXPECT_EQ(h.buckets[3], 2u);               // 5 twice: [4, 8)
  EXPECT_EQ(h.buckets[7], 1u);               // 100: [64, 128)
}

TEST(ObsHistogram, MergeIsBucketwiseSum) {
  Histogram a, b;
  a.record(3);
  a.record(64);
  b.record(3);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.sum, 3u + 64u + 3u + 1000u);
  EXPECT_EQ(a.max, 1000u);
  EXPECT_EQ(a.buckets[2], 2u);  // both 3s
}

TEST(ObsHistogram, QuantileEdgeCases) {
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  Histogram zeros;
  zeros.record(0);
  zeros.record(0);
  EXPECT_EQ(zeros.quantile(0.5), 0.0);
  EXPECT_EQ(zeros.quantile(0.99), 0.0);

  // A power of two is its bucket's lower edge, and the upper edge
  // clamps to max == lower: every quantile is the exact value.
  Histogram exact;
  exact.record(4);
  EXPECT_EQ(exact.quantile(0.5), 4.0);
  EXPECT_EQ(exact.quantile(0.99), 4.0);
}

TEST(ObsHistogram, QuantileInterpolatesWithinBucket) {
  // One value 5 in bucket [4, 8), upper edge clamped to max = 5:
  // quantile(q) = 4 + q * (5 - 4).
  Histogram h;
  h.record(5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);

  // Four 1s and one 100: p50's rank 2.5 falls in bucket [1, 2) at
  // fraction 2.5/4; p99's rank 4.95 falls in [64, 128) clamped to
  // [64, 100] at fraction 0.95.
  Histogram skewed;
  for (int i = 0; i < 4; ++i) skewed.record(1);
  skewed.record(100);
  EXPECT_DOUBLE_EQ(skewed.quantile(0.5), 1.0 + 2.5 / 4.0);
  EXPECT_DOUBLE_EQ(skewed.quantile(0.99), 64.0 + 36.0 * 0.95);
}

TEST(ObsHistogram, QuantileNeverExceedsRecordedMax) {
  Histogram h;
  h.record(3);
  h.record(9);
  h.record(1000);
  double previous = 0.0;
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double estimate = h.quantile(q);
    EXPECT_LE(estimate, static_cast<double>(h.max));
    EXPECT_GE(estimate, previous);  // monotone in q
    previous = estimate;
  }
}

// ---------------------------------------------------------------------------
// JSON escaping and writer
// ---------------------------------------------------------------------------

TEST(ObsJson, EscapeControlAndSpecials) {
  EXPECT_EQ(ppsc::obs::json_escape("plain"), "plain");
  EXPECT_EQ(ppsc::obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(ppsc::obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(ppsc::obs::json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(ppsc::obs::json_escape(std::string("\x01\x1f", 2)),
            "\\u0001\\u001f");
  // Multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(ppsc::obs::json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(ObsJson, UnescapeRoundTrip) {
  std::string raw;
  for (int c = 0; c < 256; ++c) raw += static_cast<char>(c);
  auto back = ppsc::obs::json_unescape(ppsc::obs::json_escape(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, raw);
}

TEST(ObsJson, UnescapeRejectsMalformed) {
  EXPECT_FALSE(ppsc::obs::json_unescape("trailing\\").has_value());
  EXPECT_FALSE(ppsc::obs::json_unescape("\\x41").has_value());
  EXPECT_FALSE(ppsc::obs::json_unescape("\\u00").has_value());
  EXPECT_FALSE(ppsc::obs::json_unescape("\\u00zz").has_value());
  // The escaper never emits multi-byte code points; the decoder
  // rejects them rather than guessing an encoding.
  EXPECT_FALSE(ppsc::obs::json_unescape("\\u0100").has_value());
}

TEST(ObsJson, WriterPinnedOutput) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("x\ny");
  json.key("n").value(std::uint64_t{42});
  json.key("neg").value(std::int64_t{-7});
  json.key("half").value(0.5);
  json.key("flag").value(true);
  json.key("list").begin_array().value(1).value(2).end_array();
  json.key("empty").begin_object().end_object();
  json.end_object();
  EXPECT_TRUE(json.done());
  EXPECT_EQ(json.str(),
            "{\"name\":\"x\\ny\",\"n\":42,\"neg\":-7,\"half\":0.5,"
            "\"flag\":true,\"list\":[1,2],\"empty\":{}}");
}

TEST(ObsJson, WriterNonFiniteDoublesSerializeAsZero) {
  JsonWriter json;
  json.begin_array();
  json.value(0.0 / 0.0);
  json.value(1.0 / 0.0);
  json.value(-1.0 / 0.0);
  json.end_array();
  EXPECT_EQ(json.str(), "[0,0,0]");
}

TEST(ObsJson, WriterDoneTracksTopLevel) {
  JsonWriter json;
  json.begin_object();
  EXPECT_FALSE(json.done());
  json.key("a").begin_array();
  EXPECT_FALSE(json.done());
  json.end_array();
  json.end_object();
  EXPECT_TRUE(json.done());
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

#if PPSC_OBS_ENABLED

TEST(ObsRegistry, DisabledPublishesNothing) {
  MetricRegistry& registry = MetricRegistry::global();
  registry.reset();
  registry.set_enabled(false);
  registry.add("test.counter", 3);
  registry.record("test.histogram", 9);
  { ppsc::obs::ScopedTimer timer("test.timer"); }
  const MetricSnapshot snapshot = registry.snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

TEST(ObsRegistry, CountersAndTimers) {
  MetricRegistry& registry = MetricRegistry::global();
  registry.reset();
  registry.set_enabled(true);
  registry.add("test.counter", 3);
  registry.add("test.counter", 4);
  registry.record("test.histogram", 9);
  { ppsc::obs::ScopedTimer timer("test.timer"); }
  { ppsc::obs::ScopedTimer timer("test.timer"); }
  const MetricSnapshot snapshot = registry.snapshot();
  registry.set_enabled(false);
  EXPECT_EQ(snapshot.counters.at("test.counter"), 7u);
  EXPECT_EQ(snapshot.histograms.at("test.histogram").count, 1u);
  EXPECT_EQ(snapshot.counters.at("test.timer.calls"), 2u);
  // Wall time is nonnegative by construction; presence is the contract.
  EXPECT_TRUE(snapshot.counters.count("test.timer.wall_ns"));
}

TEST(ObsRegistry, ResetClearsButKeepsSheetsUsable) {
  MetricRegistry& registry = MetricRegistry::global();
  registry.reset();
  registry.set_enabled(true);
  registry.add("test.counter", 1);
  registry.reset();
  EXPECT_TRUE(registry.snapshot().counters.empty());
  registry.add("test.counter", 5);  // same thread, same (cleared) sheet
  const MetricSnapshot snapshot = registry.snapshot();
  registry.set_enabled(false);
  EXPECT_EQ(snapshot.counters.at("test.counter"), 5u);
}

TEST(ObsRegistry, ThreadedMergeIsDeterministic) {
  MetricRegistry& registry = MetricRegistry::global();
  registry.reset();
  registry.set_enabled(true);
  const auto publish = [&registry](std::uint64_t base) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      registry.add("test.threads", base + i);
      registry.record("test.thread_hist", base + i);
    }
  };
  std::vector<std::thread> workers;
  for (std::uint64_t w = 0; w < 4; ++w) {
    workers.emplace_back(publish, w * 1000);
  }
  for (auto& worker : workers) worker.join();
  const std::string threaded = registry.snapshot().to_json();

  registry.reset();
  for (std::uint64_t w = 0; w < 4; ++w) publish(w * 1000);
  const std::string serial = registry.snapshot().to_json();
  registry.set_enabled(false);
  // Same publishes, any thread layout -> byte-identical serialization.
  EXPECT_EQ(threaded, serial);
}

TEST(ObsRegistry, SnapshotJsonShape) {
  MetricRegistry& registry = MetricRegistry::global();
  registry.reset();
  registry.set_enabled(true);
  registry.add("b.counter", 2);
  registry.add("a.counter", 1);
  registry.record("h", 4);
  const std::string json = registry.snapshot().to_json();
  registry.set_enabled(false);
  // Value 4 sits on its bucket's lower edge with the upper edge
  // clamped to max, so the p50/p90/p99 estimates are exactly 4 and the
  // pinned string stays free of long %.17g fractions.
  EXPECT_EQ(json,
            "{\"counters\":{\"a.counter\":1,\"b.counter\":2},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":4,\"max\":4,"
            "\"p50\":4,\"p90\":4,\"p99\":4,\"buckets\":[[4,1]]}}}");
}

// ---------------------------------------------------------------------------
// Engine metrics end to end
// ---------------------------------------------------------------------------

TEST(ObsEngines, ParallelSweepSnapshotIsThreadCountInvariant) {
  MetricRegistry& registry = MetricRegistry::global();
  auto c = ppsc::core::unary_counting(4);

  registry.reset();
  registry.set_enabled(true);
  const auto serial =
      ppsc::sim::measure_convergence_parallel(c, {16}, 8, {}, 1);
  const std::string snap1 = registry.snapshot().to_json();

  registry.reset();
  const auto parallel =
      ppsc::sim::measure_convergence_parallel(c, {16}, 8, {}, 4);
  const std::string snap4 = registry.snapshot().to_json();
  registry.set_enabled(false);

  // The sweep itself is bit-identical 1-vs-N (per-run seeds), and so
  // is the metric snapshot: per-thread sheets merge by order-
  // independent sums.
  EXPECT_EQ(serial.mean_steps, parallel.mean_steps);
  EXPECT_EQ(snap1, snap4);
  EXPECT_FALSE(snap1.find("sim.agent.runs") == std::string::npos);
}

#endif  // PPSC_OBS_ENABLED

TEST(ObsEngines, ExploreStatsOnHandComputedNet) {
  // Chain s0 -> s1 -> s2 from {2,0,0}: the 6 weak compositions of 2
  // tokens over a 3-chain, with 6 firings between them.
  ppsc::petri::PetriNet net(3);
  net.add(ppsc::petri::Config{1, 0, 0}, ppsc::petri::Config{0, 1, 0});
  net.add(ppsc::petri::Config{0, 1, 0}, ppsc::petri::Config{0, 0, 1});
  const auto graph =
      ppsc::petri::explore(net, {ppsc::petri::Config{2, 0, 0}}, {});
  EXPECT_EQ(graph.stats.configs, 6u);
  EXPECT_EQ(graph.stats.configs, graph.nodes.size());
  EXPECT_EQ(graph.stats.edges, 6u);
  EXPECT_FALSE(graph.stats.truncated);
  EXPECT_GE(graph.stats.frontier_peak, 1u);
  // One probe per root + one per fired transition.
  EXPECT_EQ(graph.stats.probes, 7u);
}

TEST(ObsEngines, ExploreStatsReportTruncation) {
  ppsc::petri::PetriNet net(1);
  net.add(ppsc::petri::Config{1}, ppsc::petri::Config{2});  // pump
  ppsc::petri::ExploreLimits limits;
  limits.max_nodes = 5;
  const auto graph =
      ppsc::petri::explore(net, {ppsc::petri::Config{1}}, limits);
  EXPECT_TRUE(graph.stats.truncated);
  EXPECT_EQ(graph.stats.configs, 5u);
}

TEST(ObsEngines, BackwardBasisStats) {
  // Chain s0 -> s1 -> s2, cover s2: basis iterates {s2} -> {s1} -> {s0}.
  ppsc::petri::PetriNet net(3);
  net.add(ppsc::petri::Config{1, 0, 0}, ppsc::petri::Config{0, 1, 0});
  net.add(ppsc::petri::Config{0, 1, 0}, ppsc::petri::Config{0, 0, 1});
  ppsc::petri::BackwardBasisStats stats;
  const auto basis = ppsc::petri::backward_basis(
      net, ppsc::petri::Config{0, 0, 1}, 1u << 22, &stats);
  EXPECT_EQ(stats.basis_final, basis.size());
  EXPECT_GE(stats.basis_peak, stats.basis_final);
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.predecessors, 0u);
  EXPECT_GT(stats.comparisons, 0u);
}

TEST(ObsEngines, CoveringWordCarriesExploreStats) {
  ppsc::petri::PetriNet net(2);
  net.add(ppsc::petri::Config{1, 0}, ppsc::petri::Config{0, 1});
  const auto result = ppsc::petri::shortest_covering_word(
      net, ppsc::petri::Config{2, 0}, ppsc::petri::Config{0, 2}, 1000);
  ASSERT_TRUE(result.word.has_value());
  EXPECT_EQ(result.stats.configs, result.explored);
  EXPECT_GT(result.stats.probes, 0u);
}

// ---------------------------------------------------------------------------
// bench/report.h schema
// ---------------------------------------------------------------------------

TEST(ObsReport, SchemaIsPinned) {
  const std::string path =
      testing::TempDir() + "/ppsc_obs_report_schema.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("PPSC_BENCH_JSON", path.c_str(), 1), 0);
  {
    MetricRegistry& registry = MetricRegistry::global();
    registry.reset();
    ppsc::bench::Report report("schema_probe");
    registry.add("probe.counter", 3);
    registry.record("probe.hist", 4);
    report.add_items(10.0);
  }
  ASSERT_EQ(unsetenv("PPSC_BENCH_JSON"), 0);
  MetricRegistry::global().set_enabled(false);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "report not written to " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  // Key order and nesting are part of the schema contract
  // scripts/bench_report.sh and downstream tooling rely on.
  EXPECT_EQ(json.find("{\"bench\":\"schema_probe\",\"git_rev\":\""), 0u);
  const std::size_t rev_pos = json.find("\"git_rev\":");
  const std::size_t threads_pos = json.find("\"threads\":");
  const std::size_t obs_pos = json.find("\"obs_compiled\":");
  const std::size_t wall_pos = json.find("\"wall_ms\":");
  const std::size_t items_pos = json.find("\"items_per_sec\":");
  const std::size_t counters_pos = json.find("\"counters\":{");
  const std::size_t histograms_pos = json.find("\"histograms\":{");
  ASSERT_NE(rev_pos, std::string::npos);
  ASSERT_NE(threads_pos, std::string::npos);
  ASSERT_NE(obs_pos, std::string::npos);
  ASSERT_NE(wall_pos, std::string::npos);
  ASSERT_NE(items_pos, std::string::npos);
  ASSERT_NE(counters_pos, std::string::npos);
  ASSERT_NE(histograms_pos, std::string::npos);
  EXPECT_LT(rev_pos, threads_pos);
  EXPECT_LT(threads_pos, obs_pos);
  EXPECT_LT(obs_pos, wall_pos);
  EXPECT_LT(wall_pos, items_pos);
  EXPECT_LT(items_pos, counters_pos);
  EXPECT_LT(counters_pos, histograms_pos);
  EXPECT_EQ(json.back(), '\n');
  // The metadata after `bench` is wall-clock-free by design; a date
  // stamp would make every baseline regeneration a spurious diff.
  EXPECT_EQ(json.find("\"date\""), std::string::npos);

#if PPSC_OBS_ENABLED
  EXPECT_NE(json.find("\"obs_compiled\":true"), std::string::npos);
  // The registry was enabled by the Report constructor, so the probe
  // metrics (and the flattened histogram triple) are in `counters`.
  EXPECT_NE(json.find("\"probe.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"probe.hist.count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"probe.hist.sum\":4"), std::string::npos);
  EXPECT_NE(json.find("\"probe.hist.max\":4"), std::string::npos);
  EXPECT_NE(json.find("\"probe.hist\":{\"count\":1,\"sum\":4,\"max\":4,"
                      "\"p50\":4,\"p90\":4,\"p99\":4,\"buckets\":[[4,1]]}"),
            std::string::npos);
#endif
  std::remove(path.c_str());
}

#if PPSC_OBS_ENABLED

TEST(ObsReport, DumpSnapshotWhenEnvRequests) {
  // PPSC_OBS_DUMP=<path> makes any binary write its final registry
  // snapshot at exit; the exit hook calls write_snapshot_if_requested,
  // exercised here directly (the atexit registration itself happens in
  // the registry constructor, which already ran for this process).
  const std::string path = testing::TempDir() + "/ppsc_obs_dump.json";
  std::remove(path.c_str());
  MetricRegistry& registry = MetricRegistry::global();
  registry.reset();
  registry.set_enabled(true);
  registry.add("dump.probe", 11);
  ASSERT_EQ(setenv("PPSC_OBS_DUMP", path.c_str(), 1), 0);
  EXPECT_TRUE(ppsc::obs::write_snapshot_if_requested());
  ASSERT_EQ(unsetenv("PPSC_OBS_DUMP"), 0);
  registry.set_enabled(false);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "snapshot not written to " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"dump.probe\":11"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsReport, DumpIsInertWithoutEnv) {
  ASSERT_EQ(unsetenv("PPSC_OBS_DUMP"), 0);
  EXPECT_FALSE(ppsc::obs::write_snapshot_if_requested());
}

TEST(ObsReport, DumpUnwritablePathFailsGracefully) {
  // An unwritable PPSC_OBS_DUMP target (here: a path inside a
  // directory that does not exist) must fail *gracefully*: report
  // false, crash nothing, and leave no partial file behind. This is
  // the negative arm of DumpSnapshotWhenEnvRequests -- the atexit hook
  // runs this same function, so a crash here would turn every
  // instrumented binary's clean exit into an abort.
  const std::string dir = testing::TempDir() + "/ppsc_no_such_dir";
  const std::string path = dir + "/snapshot.json";
  MetricRegistry& registry = MetricRegistry::global();
  registry.reset();
  registry.set_enabled(true);
  registry.add("dump.unwritable.probe", 1);
  ASSERT_EQ(setenv("PPSC_OBS_DUMP", path.c_str(), 1), 0);
  EXPECT_FALSE(ppsc::obs::write_snapshot_if_requested());
  ASSERT_EQ(unsetenv("PPSC_OBS_DUMP"), 0);
  registry.set_enabled(false);
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "partial dump left at " << path;
}

#endif  // PPSC_OBS_ENABLED

TEST(ObsReport, InertWithoutEnv) {
  const std::string path =
      testing::TempDir() + "/ppsc_obs_report_inert.json";
  std::remove(path.c_str());
  ASSERT_EQ(unsetenv("PPSC_BENCH_JSON"), 0);
  const bool was_enabled = MetricRegistry::global().enabled();
  { ppsc::bench::Report report("inert_probe"); }
  EXPECT_EQ(MetricRegistry::global().enabled(), was_enabled);
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

}  // namespace
