// verify/wellspec: schedule-independent consensus extraction,
// differentially tested against the predicate-given checker in
// verify/stable.h on the counting families, plus the ill-specified
// rejection path and the empty-population convention.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/constructions.h"
#include "core/protocol.h"
#include "verify/stable.h"
#include "verify/wellspec.h"

namespace core = ppsc::core;
namespace verify = ppsc::verify;

namespace {

// The wellspec checker, told nothing, must extract exactly the values
// the predicate-given checker verifies consensus against.
void expect_extraction_matches(const core::ConstructedProtocol& cp,
                               core::Count bound) {
  const auto wellspec =
      verify::check_well_specification_up_to(cp.protocol, bound);
  EXPECT_TRUE(wellspec.verified()) << cp.family;
  const auto stable = verify::check_up_to(cp.protocol, cp.predicate, bound);
  ASSERT_EQ(wellspec.verdicts.size(), stable.verdicts.size()) << cp.family;
  for (std::size_t i = 0; i < wellspec.verdicts.size(); ++i) {
    const auto& verdict = wellspec.verdicts[i];
    ASSERT_EQ(verdict.input, stable.verdicts[i].input) << cp.family;
    EXPECT_TRUE(stable.verdicts[i].ok) << cp.family;
    ASSERT_TRUE(verdict.value.has_value()) << cp.family;
    if (core::Protocol::population(
            cp.protocol.initial_config(verdict.input)) == 0) {
      // Empty population: stable.h passes vacuously, wellspec extracts
      // false by convention.
      EXPECT_FALSE(*verdict.value) << cp.family;
    } else {
      EXPECT_EQ(*verdict.value, cp.predicate(verdict.input))
          << cp.family << " input " << verdict.input[0];
    }
  }
}

core::Protocol racy_consensus() {
  core::ProtocolBuilder builder;
  builder.state("i", core::Output::kZero);
  builder.state("Y", core::Output::kOne);
  builder.state("N", core::Output::kZero);
  builder.initial("i");
  builder.rule("i + i -> Y + Y");
  builder.rule("i + i -> N + N");
  builder.rule("Y + i -> Y + Y");
  builder.rule("N + i -> N + N");
  return builder.build();
}

}  // namespace

TEST(WellSpec, DifferentialOnCountingFamilies) {
  expect_extraction_matches(core::unary_counting(3), 5);
  expect_extraction_matches(core::binary_counting(4), 6);
  expect_extraction_matches(core::modulo_counting(3, 1), 6);
}

TEST(WellSpec, WeightedThresholdMatchesPredicate) {
  const auto cp = core::weighted_threshold({1, 2}, 3);
  EXPECT_EQ(cp.protocol.num_states(), 4u);
  EXPECT_EQ(cp.protocol.input_arity(), 2u);
  const auto result = verify::check_well_specification_up_to(cp.protocol, 3);
  EXPECT_TRUE(result.verified());
  for (const auto& verdict : result.verdicts) {
    ASSERT_TRUE(verdict.value.has_value());
    const bool expected = core::Protocol::population(cp.protocol.initial_config(
                              verdict.input)) != 0 &&
                          cp.predicate(verdict.input);
    EXPECT_EQ(*verdict.value, expected)
        << "input (" << verdict.input[0] << ", " << verdict.input[1] << ")";
  }
}

TEST(WellSpec, WeightedThresholdRejectsBadArguments) {
  EXPECT_THROW(core::weighted_threshold({}, 3), std::invalid_argument);
  EXPECT_THROW(core::weighted_threshold({1, -1}, 3), std::invalid_argument);
  EXPECT_THROW(core::weighted_threshold({1}, 0), std::invalid_argument);
}

TEST(WellSpec, RacyConsensusIsRejectedExactlyAboveOneAgent) {
  const core::Protocol racy = racy_consensus();
  const auto result = verify::check_well_specification_up_to(racy, 5);
  EXPECT_FALSE(result.verified());
  ASSERT_EQ(result.verdicts.size(), 6u);
  for (const auto& verdict : result.verdicts) {
    const core::Count n = verdict.input[0];
    if (n <= 1) {
      // 0 agents: false by convention; 1 lone agent: stuck on i (0).
      ASSERT_TRUE(verdict.value.has_value()) << "input " << n;
      EXPECT_FALSE(*verdict.value) << "input " << n;
    } else {
      // Two or more agents race to all-Y or all-N.
      EXPECT_FALSE(verdict.value.has_value()) << "input " << n;
      EXPECT_FALSE(verdict.detail.empty()) << "input " << n;
    }
  }
}

TEST(WellSpec, EmptyPopulationComputesFalse) {
  const auto verdict =
      verify::classify_input(core::unary_counting(2).protocol, {0});
  ASSERT_TRUE(verdict.value.has_value());
  EXPECT_FALSE(*verdict.value);
  EXPECT_EQ(verdict.reachable_configs, 1u);
}

TEST(WellSpec, RejectsNegativeBound) {
  EXPECT_THROW(verify::check_well_specification_up_to(racy_consensus(), -1),
               std::invalid_argument);
}
