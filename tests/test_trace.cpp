// Span tracing (obs/trace.h): the Chrome trace-event export pinned
// byte-for-byte on hand-built events, ScopedSpan nesting semantics,
// ring wrap accounting, thread-count invariance of the sim/parallel
// span stream, and an end-to-end schema check over the engine spans.
//
// Tests run against the process-global TraceRegistry (the object the
// engines record into), so each one starts with reset() and leaves
// the registry disabled. The pinned-JSON test runs first in this
// binary: it relies on the main thread owning ring 0, which holds as
// long as no earlier test appended from another thread.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/constructions.h"
#include "obs/trace.h"
#include "petri/coverability.h"
#include "petri/karp_miller.h"
#include "petri/petri_net.h"
#include "petri/reachability.h"
#include "sim/expected_time.h"
#include "sim/parallel.h"
#include "verify/stable.h"

namespace {

using ppsc::obs::ScopedSpan;
using ppsc::obs::TraceEvent;
using ppsc::obs::TraceRegistry;

#if PPSC_OBS_ENABLED

TEST(TraceJson, PinnedChromeOutputOnHandBuiltEvents) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.reset();
  registry.set_enabled(true);

  // Fixed timestamps, so the export is fully deterministic: an outer
  // 4us span containing an inner 2.5us one with one numeric arg.
  TraceEvent outer;
  outer.name = "outer";
  outer.category = "test";
  outer.t_start_ns = 1000;
  outer.t_end_ns = 5000;
  outer.depth = 0;
  TraceEvent inner;
  inner.name = "inner";
  inner.category = "test";
  inner.t_start_ns = 2000;
  inner.t_end_ns = 4500;
  inner.depth = 1;
  inner.add_arg("k", 7);
  // Destruction order appends children first; collect() re-sorts.
  registry.append(inner);
  registry.append(outer);

  const std::string json = registry.to_chrome_json();
  registry.reset();
  registry.set_enabled(false);

  // Timestamps rebase to the earliest start (1000ns) and convert to
  // fractional microseconds, the unit the trace-event format fixes.
  EXPECT_EQ(json,
            "{\"traceEvents\":["
            "{\"name\":\"outer\",\"cat\":\"test\",\"ph\":\"X\","
            "\"ts\":0,\"dur\":4,\"pid\":1,\"tid\":0},"
            "{\"name\":\"inner\",\"cat\":\"test\",\"ph\":\"X\","
            "\"ts\":1,\"dur\":2.5,\"pid\":1,\"tid\":0,"
            "\"args\":{\"k\":7}}"
            "],\"displayTimeUnit\":\"ns\"}");
}

TEST(TraceJson, ArgOverflowKeepsFirstTwo) {
  TraceEvent event;
  event.add_arg("a", 1);
  event.add_arg("b", 2);
  event.add_arg("c", 3);  // dropped: kMaxArgs == 2
  EXPECT_EQ(event.num_args, 2u);
  EXPECT_STREQ(event.args[1].key, "b");
}

TEST(TraceSpan, RecursionRecordsNestingDepths) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.reset();
  registry.set_enabled(true);

  const std::function<void(int)> descend = [&](int levels) {
    ScopedSpan span("recurse", "test");
    span.arg("level", static_cast<std::uint64_t>(levels));
    if (levels > 0) descend(levels - 1);
  };
  descend(2);

  const std::vector<TraceEvent> events = registry.collect();
  registry.reset();
  registry.set_enabled(false);

  ASSERT_EQ(events.size(), 3u);
  // collect() orders parents before children: depth 0, 1, 2 with each
  // child's interval contained in its parent's.
  for (std::uint32_t d = 0; d < 3; ++d) {
    EXPECT_EQ(events[d].depth, d);
    EXPECT_STREQ(events[d].name, "recurse");
  }
  for (std::size_t child = 1; child < events.size(); ++child) {
    EXPECT_GE(events[child].t_start_ns, events[child - 1].t_start_ns);
    EXPECT_LE(events[child].t_end_ns, events[child - 1].t_end_ns);
  }
}

TEST(TraceSpan, RuntimeDisabledRecordsNothing) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.reset();
  registry.set_enabled(false);
  {
    ScopedSpan span("ghost", "test");
    span.arg("k", 1);
  }
  EXPECT_TRUE(registry.collect().empty());
  EXPECT_EQ(registry.dropped(), 0u);
}

TEST(TraceRing, WrapKeepsNewestAndCountsDropped) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.reset();
  registry.set_enabled(true);
  const std::uint64_t total = TraceRegistry::kRingCapacity + 5;
  for (std::uint64_t i = 0; i < total; ++i) {
    TraceEvent event;
    event.name = "wrap";
    event.category = "test";
    event.t_start_ns = i;
    event.t_end_ns = i + 1;
    registry.append(event);
  }
  const std::vector<TraceEvent> events = registry.collect();
  const std::uint64_t dropped = registry.dropped();
  registry.reset();
  registry.set_enabled(false);

  EXPECT_EQ(events.size(), TraceRegistry::kRingCapacity);
  EXPECT_EQ(dropped, 5u);
  // The suffix window: the oldest 5 events were overwritten.
  std::uint64_t min_start = ~0ull;
  for (const TraceEvent& event : events) {
    min_start = std::min(min_start, event.t_start_ns);
  }
  EXPECT_EQ(min_start, 5u);
}

// The multiset of (name, args) pairs, thread ids and timestamps
// erased -- the span stream's deterministic content.
std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>>
span_content(const std::vector<TraceEvent>& events) {
  std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>> out;
  for (const TraceEvent& event : events) {
    out.emplace_back(event.name,
                     event.num_args > 0 ? event.args[0].value : 0,
                     event.num_args > 1 ? event.args[1].value : 0);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TraceSim, ParallelSweepSpansAreThreadCountInvariant) {
  TraceRegistry& registry = TraceRegistry::global();
  auto c = ppsc::core::unary_counting(4);

  registry.reset();
  registry.set_enabled(true);
  ppsc::sim::measure_convergence_parallel(c, {16}, 8, {}, 1);
  const auto serial = span_content(registry.collect());

  registry.reset();
  ppsc::sim::measure_convergence_parallel(c, {16}, 8, {}, 4);
  const std::vector<TraceEvent> threaded_events = registry.collect();
  const auto threaded = span_content(threaded_events);
  registry.set_enabled(false);
  registry.reset();

  // Per-run seeds are seed + r regardless of the thread layout, so the
  // span stream -- one sim.run per run with its (seed, steps) args,
  // plus the sim.sweep parent -- is identical content-wise; only the
  // thread ids differ.
  EXPECT_EQ(serial, threaded);
  std::size_t runs = 0;
  for (const auto& entry : serial) {
    if (std::get<0>(entry) == "sim.run") ++runs;
  }
  EXPECT_EQ(runs, 8u);
  // The multi-thread sweep executes every run on a pool thread, so its
  // sim.run spans land on worker ring tracks, never the main thread's
  // (which owns the sim.sweep parent). How many distinct workers show
  // up is scheduler-dependent -- on a loaded single-CPU machine one
  // worker can drain the whole queue -- so only the track separation
  // is asserted.
  std::uint32_t sweep_tid = 0;
  for (const TraceEvent& event : threaded_events) {
    if (std::string(event.name) == "sim.sweep") sweep_tid = event.thread_id;
  }
  for (const TraceEvent& event : threaded_events) {
    if (std::string(event.name) != "sim.run") continue;
    EXPECT_NE(event.thread_id, sweep_tid);
  }
}

TEST(TraceEngines, CrossSectionExportsSchemaValidNestedSpans) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.reset();
  registry.set_enabled(true);

  // One small query per engine, the e19 cross-section in miniature.
  auto c = ppsc::core::unary_counting(4);
  const ppsc::petri::PetriNet net(c.protocol.net());
  const ppsc::petri::Config source(c.protocol.initial_config({3}));
  const ppsc::petri::Config target = ppsc::petri::Config::unit(
      c.protocol.num_states(), c.protocol.states().at("4!"));
  ppsc::petri::explore(net, {source}, {});
  ppsc::petri::backward_basis(net, target, 1u << 22, nullptr);
  ppsc::petri::karp_miller(net, source, 10000);
  ppsc::sim::expected_interactions_to_silence(c.protocol, {3}, 100000);
  ppsc::verify::check_input(c.protocol, c.predicate, {3}, {});

  const std::vector<TraceEvent> events = registry.collect();
  const std::string json = registry.to_chrome_json();

  // Spans from at least 4 engines, with nested phases under them.
  std::vector<std::string> roots;
  bool nested = false;
  for (const TraceEvent& event : events) {
    if (event.depth > 0) nested = true;
    if (event.depth != 0) continue;
    if (std::find(roots.begin(), roots.end(), event.name) == roots.end()) {
      roots.emplace_back(event.name);
    }
  }
  for (const char* engine :
       {"explore", "coverability", "karp_miller", "expected_time",
        "verify"}) {
    EXPECT_NE(std::find(roots.begin(), roots.end(), engine), roots.end())
        << "no top-level span from engine " << engine;
  }
  EXPECT_TRUE(nested);

  // Chrome trace-event schema, string-level: the envelope plus every
  // per-event required key (scripts/bench_report.sh re-validates the
  // same shape with a real JSON parser on every bench run).
  EXPECT_EQ(json.find("{\"traceEvents\":[{"), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\"}"), std::string::npos);
  for (const char* key :
       {"\"name\":", "\"cat\":", "\"ph\":\"X\"", "\"ts\":", "\"dur\":",
        "\"pid\":1", "\"tid\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }

  // PPSC_TRACE_JSON end-to-end: the env-gated writer emits the same
  // document (plus trailing newline) to the named path.
  const std::string path = testing::TempDir() + "/ppsc_trace_sample.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("PPSC_TRACE_JSON", path.c_str(), 1), 0);
  EXPECT_TRUE(ppsc::obs::write_trace_if_requested());
  ASSERT_EQ(unsetenv("PPSC_TRACE_JSON"), 0);
  registry.reset();
  registry.set_enabled(false);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace not written to " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json + "\n");
  std::remove(path.c_str());
}

#else  // !PPSC_OBS_ENABLED

TEST(TraceOff, CompiledOutSpansRecordNothing) {
  // -DPPSC_OBS=OFF compiles ScopedSpan to an empty body and pins the
  // registry disabled: even force-enabling records zero events.
  TraceRegistry& registry = TraceRegistry::global();
  registry.set_enabled(true);
  {
    ScopedSpan span("ghost", "test");
    span.arg("k", 1);
  }
  TraceEvent event;
  event.name = "ghost";
  registry.append(event);
  EXPECT_FALSE(registry.enabled());
  EXPECT_TRUE(registry.collect().empty());
  EXPECT_EQ(registry.dropped(), 0u);
}

#endif  // PPSC_OBS_ENABLED

TEST(TraceEnv, TraceJsonEnvParsesEmptyAsUnset) {
  ASSERT_EQ(setenv("PPSC_TRACE_JSON", "", 1), 0);
  EXPECT_EQ(ppsc::obs::trace_json_env(), nullptr);
  ASSERT_EQ(unsetenv("PPSC_TRACE_JSON"), 0);
  EXPECT_EQ(ppsc::obs::trace_json_env(), nullptr);
  EXPECT_FALSE(ppsc::obs::write_trace_if_requested());
}

}  // namespace
