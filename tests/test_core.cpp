// Shape and model invariants of the constructions: the resource counts
// the paper claims (states / width / leaders / transitions) and the
// Petri-net validation rules.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/constructions.h"
#include "core/protocol.h"

namespace core = ppsc::core;

TEST(Protocol, BuilderAndInitialConfig) {
  core::ProtocolBuilder b;
  const auto A = b.add_state("A", false);
  const auto B = b.add_state("B", true);
  b.add_input(A);
  b.add_leaders(B, 2);
  b.add_rule("t", {{A, 1}, {B, 1}}, {{B, 2}});
  const core::Protocol p = b.build();
  EXPECT_EQ(p.num_states(), 2u);
  EXPECT_EQ(p.num_leaders(), 2);
  EXPECT_EQ(p.width(), 2);
  EXPECT_EQ(p.net().num_transitions(), 1u);
  const core::Config c = p.initial_config({3});
  EXPECT_EQ(c[A], 3);
  EXPECT_EQ(c[B], 2);
  EXPECT_EQ(core::Protocol::population(c), 5);
  EXPECT_THROW(p.initial_config({1, 2}), std::invalid_argument);
  EXPECT_THROW(p.initial_config({-1}), std::invalid_argument);
}

TEST(Protocol, BuilderRejectsUnknownStates) {
  core::ProtocolBuilder b;
  const auto A = b.add_state("A", false);
  EXPECT_THROW(b.add_rule("t", {{A, 1}, {A + 1, 1}}, {{A, 2}}),
               std::invalid_argument);
  EXPECT_THROW(b.add_pair_rule("t", A, A, A, A + 1), std::invalid_argument);
  EXPECT_THROW(b.add_input(A + 1), std::invalid_argument);
  EXPECT_THROW(b.add_leaders(A + 1, 1), std::invalid_argument);
  EXPECT_THROW(b.add_leaders(A, -2), std::invalid_argument);
}

TEST(Protocol, BuilderStringApiParsesPairRules) {
  core::ProtocolBuilder b;
  b.state("i", core::Output::kZero);
  b.state("Y", core::Output::kOne);
  b.initial("i");
  b.rule("i + i -> Y + Y");
  b.rule("  Y +  i ->Y+ Y ");  // whitespace is insignificant
  const core::Protocol p = b.build();
  EXPECT_EQ(p.num_states(), 2u);
  EXPECT_FALSE(p.output(0));
  EXPECT_TRUE(p.output(1));
  EXPECT_EQ(p.input_arity(), 1u);
  EXPECT_EQ(p.input_state(0), 0u);
  ASSERT_EQ(p.net().num_transitions(), 2u);
  EXPECT_EQ(p.net().transition(0).pre, (std::vector<core::Count>{2, 0}));
  EXPECT_EQ(p.net().transition(0).post, (std::vector<core::Count>{0, 2}));
  EXPECT_EQ(p.net().transition(1).pre, (std::vector<core::Count>{1, 1}));
  EXPECT_EQ(p.net().transition(1).post, (std::vector<core::Count>{0, 2}));
}

TEST(Protocol, BuilderStringApiRejectsBadSpecs) {
  core::ProtocolBuilder b;
  b.state("i", core::Output::kZero);
  b.state("Y", core::Output::kOne);
  EXPECT_THROW(b.initial("missing"), std::invalid_argument);
  EXPECT_THROW(b.rule("i + i -> Y + Z"), std::invalid_argument);  // unknown
  EXPECT_THROW(b.rule("i + i Y + Y"), std::invalid_argument);  // no arrow
  EXPECT_THROW(b.rule("i -> Y"), std::invalid_argument);  // not a pair
  EXPECT_THROW(b.rule("i + i -> Y"), std::invalid_argument);
}

TEST(Protocol, BuilderRejectsUseAfterBuild) {
  core::ProtocolBuilder b;
  const auto A = b.add_state("A", false);
  b.add_input(A);
  b.build();
  EXPECT_THROW(b.add_state("B", true), std::logic_error);
  EXPECT_THROW(b.add_input(A), std::logic_error);
  EXPECT_THROW(b.add_leaders(A, 1), std::logic_error);
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(PetriNet, RejectsNonConservativeAndIdentity) {
  core::PetriNet net(2);
  core::Transition bad;
  bad.name = "bad";
  bad.pre = {1, 0};
  bad.post = {0, 2};
  EXPECT_THROW(net.add_transition(bad), std::invalid_argument);
  core::Transition identity;
  identity.name = "id";
  identity.pre = {1, 1};
  identity.post = {1, 1};
  EXPECT_THROW(net.add_transition(identity), std::invalid_argument);
  core::Transition good;
  good.name = "swap";
  good.pre = {2, 0};
  good.post = {0, 2};
  net.add_transition(good);
  EXPECT_EQ(net.num_transitions(), 1u);
}

TEST(Example41, PaperShape) {
  for (core::Count n : {1, 2, 5, 9}) {
    const auto cp = core::example_4_1(n);
    EXPECT_EQ(cp.protocol.num_states(), 2u) << "n=" << n;
    EXPECT_EQ(cp.protocol.width(), n) << "n=" << n;
    EXPECT_EQ(cp.protocol.num_leaders(), 0) << "n=" << n;
    EXPECT_EQ(cp.protocol.net().num_transitions(),
              static_cast<std::size_t>(n))
        << "n=" << n;
    EXPECT_FALSE(cp.predicate({n - 1}));
    EXPECT_TRUE(cp.predicate({n}));
  }
}

TEST(Example42, PaperShape) {
  for (core::Count n : {1, 4, 7}) {
    const auto cp = core::example_4_2(n);
    EXPECT_EQ(cp.protocol.num_states(), 6u) << "n=" << n;
    EXPECT_EQ(cp.protocol.width(), 2) << "n=" << n;
    EXPECT_EQ(cp.protocol.num_leaders(), n) << "n=" << n;
    EXPECT_EQ(cp.protocol.net().num_transitions(), 5u) << "n=" << n;
  }
}

TEST(CountingFamilies, StateCountShapes) {
  // unary: 2(n+1) states; binary: log2(n)+2; belief: n; and the two
  // O(1)-state examples from the paper.
  EXPECT_EQ(core::unary_counting(8).protocol.num_states(), 18u);
  EXPECT_EQ(core::binary_counting(8).protocol.num_states(), 5u);
  EXPECT_EQ(core::binary_counting(32).protocol.num_states(), 7u);
  EXPECT_EQ(core::threshold_belief(8).protocol.num_states(), 8u);
  EXPECT_THROW(core::binary_counting(6), std::invalid_argument);
  EXPECT_THROW(core::binary_counting(1), std::invalid_argument);

  const auto families = core::counting_families(8);
  ASSERT_EQ(families.size(), 5u);
  for (const auto& family : families) {
    EXPECT_EQ(family.protocol.input_arity(), 1u) << family.family;
    EXPECT_TRUE(family.predicate({8})) << family.family;
    EXPECT_FALSE(family.predicate({7})) << family.family;
  }
  // Only Example 4.1 pays width; only Example 4.2 pays leaders.
  EXPECT_EQ(core::counting_families(4)[0].protocol.width(), 2);
}

TEST(ModuloAndMajority, Predicates) {
  const auto mod = core::modulo_counting(5, 2);
  EXPECT_EQ(mod.protocol.num_states(), 7u);
  EXPECT_TRUE(mod.predicate({7}));
  EXPECT_FALSE(mod.predicate({10}));
  EXPECT_THROW(core::modulo_counting(1, 0), std::invalid_argument);
  EXPECT_THROW(core::modulo_counting(3, 3), std::invalid_argument);

  const auto maj = core::majority();
  EXPECT_EQ(maj.protocol.num_states(), 4u);
  EXPECT_EQ(maj.protocol.input_arity(), 2u);
  EXPECT_TRUE(maj.predicate({3, 2}));
  EXPECT_FALSE(maj.predicate({2, 2}));
  EXPECT_FALSE(maj.predicate({1, 3}));
}
