// util/rng stream-splitting: the jump functions and the per-stream
// family the sharded scheduler seeds its shards from. The pinned
// sequences are regression anchors -- xoshiro256** and its jump
// polynomials are specified bit-exactly, so these values must never
// change on any platform.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "util/rng.h"

namespace {

using ppsc::util::Xoshiro256;

TEST(Rng, PinnedBaseSequence) {
  Xoshiro256 rng(12345);
  EXPECT_EQ(rng.next(), 0xbe6a36374160d49bull);
  EXPECT_EQ(rng.next(), 0x214aaa0637a688c6ull);
  EXPECT_EQ(rng.next(), 0xf69d16de9954d388ull);
  EXPECT_EQ(rng.next(), 0x0c60048c4e96e033ull);
}

TEST(Rng, PinnedJumpSequence) {
  Xoshiro256 rng(12345);
  rng.jump();
  EXPECT_EQ(rng.next(), 0x3ed575283f0594e6ull);
  EXPECT_EQ(rng.next(), 0x4b77bcfa88a79146ull);
  EXPECT_EQ(rng.next(), 0x6336cf023aa5cafeull);
  EXPECT_EQ(rng.next(), 0xe668c1b68171d10dull);
}

TEST(Rng, PinnedLongJumpSequence) {
  Xoshiro256 rng(12345);
  rng.long_jump();
  EXPECT_EQ(rng.next(), 0x92654155fb089136ull);
  EXPECT_EQ(rng.next(), 0xb9b536ab88690194ull);
  EXPECT_EQ(rng.next(), 0x65002a32ac1251beull);
  EXPECT_EQ(rng.next(), 0x27ff20b58cc86e71ull);
}

TEST(Rng, PinnedStreamSequence) {
  Xoshiro256 rng = Xoshiro256::stream(12345, 3);
  EXPECT_EQ(rng.next(), 0x1a5442dc8aa8e92bull);
  EXPECT_EQ(rng.next(), 0xbb2a2b8436842362ull);
  EXPECT_EQ(rng.next(), 0xcc6b09085e64d857ull);
  EXPECT_EQ(rng.next(), 0x2496399f4348b925ull);
}

TEST(Rng, StreamZeroIsThePlainGenerator) {
  // The sharded scheduler's 1-shard bit-identity contract rests on
  // stream 0 being exactly Xoshiro256(seed).
  Xoshiro256 plain(0x5eed);
  Xoshiro256 stream0 = Xoshiro256::stream(0x5eed, 0);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(stream0.next(), plain.next());
}

TEST(Rng, StreamsAreDisjoint) {
  // Distinct jump counts land 2^128 draws apart; the first outputs of
  // a handful of streams (and the long_jump axis) must never collide.
  std::set<std::uint64_t> seen;
  std::size_t produced = 0;
  for (std::uint64_t index = 0; index < 8; ++index) {
    Xoshiro256 rng = Xoshiro256::stream(0x5eed, index);
    for (int i = 0; i < 256; ++i) {
      seen.insert(rng.next());
      ++produced;
    }
  }
  Xoshiro256 aux(0x5eed);
  aux.long_jump();
  for (int i = 0; i < 256; ++i) {
    seen.insert(aux.next());
    ++produced;
  }
  EXPECT_EQ(seen.size(), produced);
}

TEST(Rng, StreamStatisticalSmoke) {
  // Per-stream uniformity smoke: the mean of unit() sits near 1/2 and
  // each below(k) bucket near its share. Tolerances are ~6 sigma for
  // the sample sizes, so the test is deterministic in practice.
  for (std::uint64_t index = 0; index < 4; ++index) {
    Xoshiro256 rng = Xoshiro256::stream(987654321, index);
    double sum = 0.0;
    int buckets[8] = {0};
    const int samples = 16384;
    for (int i = 0; i < samples; ++i) {
      sum += rng.unit();
      ++buckets[rng.below(8)];
    }
    EXPECT_NEAR(sum / samples, 0.5, 0.015) << "stream " << index;
    for (int b = 0; b < 8; ++b) {
      EXPECT_NEAR(buckets[b], samples / 8, 300) << "stream " << index;
    }
  }
}

TEST(Rng, JumpCommutesWithDrawing) {
  // jump() is a pure state-space advance: jumping then drawing k times
  // equals drawing k times then jumping (the polynomial commutes with
  // the linear engine). Guards against a jump implementation that
  // perturbs the stream instead of advancing it.
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  a.jump();
  for (int i = 0; i < 17; ++i) a.next();
  for (int i = 0; i < 17; ++i) b.next();
  b.jump();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
