// Gate self-test: a deliberately seeded data race, compiled ONLY when
// the build is configured with PPSC_SANITIZE=thread (see
// CMakeLists.txt). Functionally the program is fine -- it increments a
// counter from two threads and exits 0 -- but the increments are plain
// (non-atomic) loads and stores, so ThreadSanitizer must report a data
// race and force a nonzero exit. CI runs this binary in the TSan job
// and fails if it exits cleanly: proof that the race detector is
// actually armed, the same discipline as the bench_compare --strict
// self-test. (ctest registers it with WILL_FAIL, so a local sanitized
// `ctest` run stays green exactly when TSan catches the race.)
//
// Do not "fix" this race; it is the probe the gate is tested with.

#include <cstdio>
#include <thread>

namespace {

// Plain shared state, intentionally unsynchronized.
long seeded_race_counter = 0;  // NOLINT: the race is the point

void hammer() {
  for (int i = 0; i < 100000; ++i) {
    seeded_race_counter = seeded_race_counter + 1;
  }
}

}  // namespace

int main() {
  std::thread a(hammer);
  std::thread b(hammer);
  a.join();
  b.join();
  std::printf("seeded race ran: counter=%ld\n", seeded_race_counter);
  // Exit 0 on the functional path: only a sanitizer report may turn
  // this into a failing process.
  return 0;
}
