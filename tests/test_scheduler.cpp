// Scheduler architecture: pair-table compilation, agent-array vs
// count-based scheduler equivalence, incremental silence detection,
// and the deterministic parallel sweep runner.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/constructions.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace core = ppsc::core;
namespace sim = ppsc::sim;

namespace {

// Re-derives silence from the census by scanning every table cell --
// the ground truth the incremental enabled-pair counter must track.
bool brute_force_silent(const sim::PairRuleTable& table,
                        const core::Config& census) {
  const std::size_t n = table.num_states();
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      if (table.rule(a, b) == nullptr) continue;
      if (a == b ? census[a] >= 2 : census[a] >= 1 && census[b] >= 1) {
        return false;
      }
    }
  }
  return true;
}

struct DirectStats {
  std::size_t converged = 0;
  std::size_t correct = 0;
  double mean_steps = 0.0;
};

// Drives `runs` seeded agent-array simulations to silence directly
// through the class API (not the sweep runner).
DirectStats run_agent_direct(const core::ConstructedProtocol& cp,
                             const std::vector<core::Count>& input,
                             std::size_t runs) {
  const auto table = sim::PairRuleTable::build(cp.protocol);
  DirectStats stats;
  if (!table) {
    ADD_FAILURE() << "protocol did not compile to a pair table";
    return stats;
  }
  const bool expected = cp.predicate(input);
  const core::Config initial = cp.protocol.initial_config(input);
  double total = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    sim::AgentSimulator simulator(*table, initial, 1000 + r);
    while (!simulator.silent() && simulator.steps() < 2000000) {
      simulator.step();
    }
    if (simulator.silent()) {
      ++stats.converged;
      const sim::OutputSummary out =
          sim::summarize_output(cp.protocol, simulator.census());
      if (out.unanimous(expected)) ++stats.correct;
    }
    total += static_cast<double>(simulator.steps());
  }
  stats.mean_steps = total / static_cast<double>(runs);
  return stats;
}

// Same measurement through the count scheduler.
DirectStats run_count_direct(const core::ConstructedProtocol& cp,
                             const std::vector<core::Count>& input,
                             std::size_t runs) {
  const bool expected = cp.predicate(input);
  const core::Config initial = cp.protocol.initial_config(input);
  DirectStats stats;
  double total = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    sim::CountSimulator simulator(cp.protocol, initial, 1000 + r);
    while (simulator.steps() < 2000000 && simulator.step()) {
    }
    if (simulator.silent()) {
      ++stats.converged;
      const sim::OutputSummary out =
          sim::summarize_output(cp.protocol, simulator.census());
      if (out.unanimous(expected)) ++stats.correct;
    }
    total += static_cast<double>(simulator.steps());
  }
  stats.mean_steps = total / static_cast<double>(runs);
  return stats;
}

}  // namespace

TEST(PairRuleTable, CompilesDeterministicPairwiseNets) {
  const auto unary = core::unary_counting(3);
  EXPECT_TRUE(sim::PairRuleTable::build(unary.protocol).has_value());
  const auto belief = core::threshold_belief(4);
  EXPECT_TRUE(sim::PairRuleTable::build(belief.protocol).has_value());
  const auto e42 = core::example_4_2(3);
  EXPECT_TRUE(sim::PairRuleTable::build(e42.protocol).has_value());
}

TEST(PairRuleTable, RejectsNonPairwiseNets) {
  // Example 4.1 has a width-n transition.
  const auto wide = core::example_4_1(3);
  EXPECT_FALSE(sim::PairRuleTable::build(wide.protocol).has_value());
  // The destructive unary variant has a width-1 decay rule.
  const auto destructive = core::destructive_unary_counting(3);
  EXPECT_FALSE(sim::PairRuleTable::build(destructive.protocol).has_value());
}

TEST(PairRuleTable, AcceptsDuplicateIdenticalRules) {
  // Registering the same transition twice is deterministic: the cell
  // already holds exactly this outcome. Regression for the bug where
  // any occupied cell was treated as a conflict, kicking protocols off
  // the agent fast path.
  core::ProtocolBuilder b;
  const auto A = b.add_state("A", false);
  const auto B = b.add_state("B", true);
  b.add_input(A);
  b.add_pair_rule("convert", A, B, B, B);
  b.add_pair_rule("convert_again", A, B, B, B);
  const auto table = sim::PairRuleTable::build(b.build());
  ASSERT_TRUE(table.has_value());
  const sim::PairRuleTable::Outcome* cell =
      table->rule(static_cast<std::uint32_t>(A),
                  static_cast<std::uint32_t>(B));
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->first, static_cast<std::uint32_t>(B));
  EXPECT_EQ(cell->second, static_cast<std::uint32_t>(B));
}

TEST(PairRuleTable, RejectsConflictingRulesOnSamePrePair) {
  core::ProtocolBuilder b;
  const auto A = b.add_state("A", false);
  const auto B = b.add_state("B", true);
  b.add_input(A);
  b.add_pair_rule("toB", A, B, B, B);
  b.add_pair_rule("toA", A, B, A, A);
  EXPECT_FALSE(sim::PairRuleTable::build(b.build()).has_value());
}

TEST(PairRuleTable, CellsMatchTheRules) {
  // majority(): A=0, B=1, a=2, b=3; cancel A+B -> a+b,
  // recruitA A+b -> A+a, recruitB B+a -> B+b, tie a+b -> b+b.
  const auto maj = core::majority();
  const auto table = sim::PairRuleTable::build(maj.protocol);
  ASSERT_TRUE(table.has_value());
  const sim::PairRuleTable::Outcome* cancel = table->rule(0, 1);
  ASSERT_NE(cancel, nullptr);
  EXPECT_EQ(cancel->first, 2u);
  EXPECT_EQ(cancel->second, 3u);
  // The mirrored cell swaps the outcome.
  const sim::PairRuleTable::Outcome* mirrored = table->rule(1, 0);
  ASSERT_NE(mirrored, nullptr);
  EXPECT_EQ(mirrored->first, 3u);
  EXPECT_EQ(mirrored->second, 2u);
  // No rule for two strong A agents.
  EXPECT_EQ(table->rule(0, 0), nullptr);

  // Diagonal cell: threshold_belief's L0 + L0 -> L1 + L0.
  const auto belief = core::threshold_belief(3);
  const auto belief_table = sim::PairRuleTable::build(belief.protocol);
  ASSERT_TRUE(belief_table.has_value());
  const sim::PairRuleTable::Outcome* up = belief_table->rule(0, 0);
  ASSERT_NE(up, nullptr);
  // The successor multiset is {L0, L1}; which agent takes which state
  // is arbitrary for a diagonal cell (the pair draw is symmetric).
  EXPECT_EQ(std::min(up->first, up->second), 0u);
  EXPECT_EQ(std::max(up->first, up->second), 1u);
}

TEST(AgentSimulator, TracksSilenceIncrementally) {
  const auto cp = core::unary_counting(3);
  const auto table = sim::PairRuleTable::build(cp.protocol);
  ASSERT_TRUE(table.has_value());
  sim::AgentSimulator simulator(*table, cp.protocol.initial_config({12}), 7);
  const core::Count population = simulator.population();
  ASSERT_EQ(population, 12);
  ASSERT_FALSE(simulator.silent());
  while (!simulator.silent()) {
    if (!simulator.step()) continue;
    // After every productive interaction the incremental flag must
    // agree with a brute-force rescan, and the census must conserve
    // the population.
    ASSERT_EQ(simulator.silent(),
              brute_force_silent(*table, simulator.census()));
    ASSERT_EQ(core::Protocol::population(simulator.census()), population);
    ASSERT_LT(simulator.steps(), 100000u);
  }
  EXPECT_TRUE(brute_force_silent(*table, simulator.census()));
  EXPECT_GE(simulator.interactions(), simulator.steps());
}

TEST(AgentSimulator, TinyPopulationsAreSilent) {
  const auto cp = core::unary_counting(2);
  const auto table = sim::PairRuleTable::build(cp.protocol);
  ASSERT_TRUE(table.has_value());
  sim::AgentSimulator empty(*table, cp.protocol.initial_config({0}), 1);
  EXPECT_TRUE(empty.silent());
  EXPECT_FALSE(empty.step());
  sim::AgentSimulator loner(*table, cp.protocol.initial_config({1}), 1);
  EXPECT_TRUE(loner.silent());
  EXPECT_FALSE(loner.step());
  EXPECT_EQ(loner.steps(), 0u);
}

TEST(SchedulerEquivalence, UnaryCountingStatsAgree) {
  // The productive-step chains of the two schedulers are identical in
  // distribution, so their means over matched run counts must agree
  // within sampling noise (generous 20% margin; the seeds are fixed,
  // so this is deterministic).
  const auto cp = core::unary_counting(3);
  const DirectStats agent = run_agent_direct(cp, {24}, 48);
  const DirectStats count = run_count_direct(cp, {24}, 48);
  EXPECT_EQ(agent.converged, 48u);
  EXPECT_EQ(count.converged, 48u);
  EXPECT_EQ(agent.correct, 48u);
  EXPECT_EQ(count.correct, 48u);
  EXPECT_GT(agent.mean_steps, 0.0);
  EXPECT_NEAR(agent.mean_steps, count.mean_steps, 0.2 * count.mean_steps);
}

TEST(SchedulerEquivalence, Example42StatsAgree) {
  const auto cp = core::example_4_2(3);
  const DirectStats agent = run_agent_direct(cp, {5}, 48);
  const DirectStats count = run_count_direct(cp, {5}, 48);
  EXPECT_EQ(agent.converged, 48u);
  EXPECT_EQ(count.converged, 48u);
  EXPECT_EQ(agent.correct, 48u);
  EXPECT_EQ(count.correct, 48u);
  EXPECT_NEAR(agent.mean_steps, count.mean_steps, 0.2 * count.mean_steps);
}

TEST(ParallelSweep, BitIdenticalAcrossThreadCounts) {
  const auto cp = core::unary_counting(3);
  const sim::ConvergenceStats one =
      sim::measure_convergence_parallel(cp, {40}, 12, {}, 1);
  const sim::ConvergenceStats four =
      sim::measure_convergence_parallel(cp, {40}, 12, {}, 4);
  EXPECT_EQ(one.runs, four.runs);
  EXPECT_EQ(one.converged, four.converged);
  EXPECT_EQ(one.correct, four.correct);
  // Bit-identical, not merely close: per-run seeds and the
  // index-ordered aggregation make thread count irrelevant.
  EXPECT_EQ(one.mean_steps, four.mean_steps);
  EXPECT_EQ(one.max_steps_observed, four.max_steps_observed);

  const sim::ConvergenceStats serial = sim::measure_convergence(cp, {40}, 12);
  EXPECT_EQ(serial.mean_steps, one.mean_steps);
  EXPECT_EQ(serial.max_steps_observed, one.max_steps_observed);
}

TEST(ParallelSweep, CountFallbackMatchesRunToSilence) {
  // The destructive variant cannot compile to a pair table, so the
  // sweep must take the count path -- whose runs are exactly
  // run_to_silence with seeds options.seed + r.
  const auto cp = core::destructive_unary_counting(3);
  ASSERT_FALSE(sim::PairRuleTable::build(cp.protocol).has_value());
  sim::RunOptions options;
  options.seed = 77;
  const sim::ConvergenceStats stats =
      sim::measure_convergence_parallel(cp, {6}, 3, options, 2);
  EXPECT_EQ(stats.converged, 3u);
  EXPECT_EQ(stats.correct, 3u);
  double total = 0.0;
  double observed_max = 0.0;
  for (std::size_t r = 0; r < 3; ++r) {
    sim::RunOptions per_run = options;
    per_run.seed = options.seed + r;
    const sim::SilenceRun run =
        sim::run_to_silence(cp.protocol, {6}, per_run);
    EXPECT_TRUE(run.silent);
    total += static_cast<double>(run.steps);
    observed_max =
        std::max(observed_max, static_cast<double>(run.steps));
  }
  EXPECT_EQ(stats.mean_steps, total / 3.0);
  EXPECT_EQ(stats.max_steps_observed, observed_max);
}

TEST(DestructiveUnary, ComputesTheSamePredicate) {
  const auto cp = core::destructive_unary_counting(3);
  const sim::ConvergenceStats above = sim::measure_convergence(cp, {5}, 3);
  EXPECT_EQ(above.correct, 3u);
  const sim::ConvergenceStats below = sim::measure_convergence(cp, {2}, 3);
  EXPECT_EQ(below.correct, 3u);
}
