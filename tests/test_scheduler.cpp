// Scheduler architecture: pair-table compilation, scheduler
// equivalence across all four schedulers (agent, sharded, census,
// count), incremental silence detection, the sharded scheduler's
// determinism contract, the dispatch heuristic, and the deterministic
// parallel sweep runner.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/constructions.h"
#include "sim/census.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace core = ppsc::core;
namespace sim = ppsc::sim;

namespace {

// Re-derives silence from the census by scanning every table cell --
// the ground truth the incremental enabled-pair counter must track.
bool brute_force_silent(const sim::PairRuleTable& table,
                        const core::Config& census) {
  const std::size_t n = table.num_states();
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      if (table.rule(a, b) == nullptr) continue;
      if (a == b ? census[a] >= 2 : census[a] >= 1 && census[b] >= 1) {
        return false;
      }
    }
  }
  return true;
}

struct DirectStats {
  std::size_t converged = 0;
  std::size_t correct = 0;
  double mean_steps = 0.0;
};

// Drives `runs` seeded agent-array simulations to silence directly
// through the class API (not the sweep runner).
DirectStats run_agent_direct(const core::ConstructedProtocol& cp,
                             const std::vector<core::Count>& input,
                             std::size_t runs) {
  const auto table = sim::PairRuleTable::build(cp.protocol);
  DirectStats stats;
  if (!table) {
    ADD_FAILURE() << "protocol did not compile to a pair table";
    return stats;
  }
  const bool expected = cp.predicate(input);
  const core::Config initial = cp.protocol.initial_config(input);
  double total = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    sim::AgentSimulator simulator(*table, initial, 1000 + r);
    while (!simulator.silent() && simulator.steps() < 2000000) {
      simulator.step();
    }
    if (simulator.silent()) {
      ++stats.converged;
      const sim::OutputSummary out =
          sim::summarize_output(cp.protocol, simulator.census());
      if (out.unanimous(expected)) ++stats.correct;
    }
    total += static_cast<double>(simulator.steps());
  }
  stats.mean_steps = total / static_cast<double>(runs);
  return stats;
}

// Same measurement through the count scheduler.
DirectStats run_count_direct(const core::ConstructedProtocol& cp,
                             const std::vector<core::Count>& input,
                             std::size_t runs) {
  const bool expected = cp.predicate(input);
  const core::Config initial = cp.protocol.initial_config(input);
  DirectStats stats;
  double total = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    sim::CountSimulator simulator(cp.protocol, initial, 1000 + r);
    while (simulator.steps() < 2000000 && simulator.step()) {
    }
    if (simulator.silent()) {
      ++stats.converged;
      const sim::OutputSummary out =
          sim::summarize_output(cp.protocol, simulator.census());
      if (out.unanimous(expected)) ++stats.correct;
    }
    total += static_cast<double>(simulator.steps());
  }
  stats.mean_steps = total / static_cast<double>(runs);
  return stats;
}

}  // namespace

TEST(PairRuleTable, CompilesDeterministicPairwiseNets) {
  const auto unary = core::unary_counting(3);
  EXPECT_TRUE(sim::PairRuleTable::build(unary.protocol).has_value());
  const auto belief = core::threshold_belief(4);
  EXPECT_TRUE(sim::PairRuleTable::build(belief.protocol).has_value());
  const auto e42 = core::example_4_2(3);
  EXPECT_TRUE(sim::PairRuleTable::build(e42.protocol).has_value());
}

TEST(PairRuleTable, RejectsNonPairwiseNets) {
  // Example 4.1 has a width-n transition.
  const auto wide = core::example_4_1(3);
  EXPECT_FALSE(sim::PairRuleTable::build(wide.protocol).has_value());
  // The destructive unary variant has a width-1 decay rule.
  const auto destructive = core::destructive_unary_counting(3);
  EXPECT_FALSE(sim::PairRuleTable::build(destructive.protocol).has_value());
}

TEST(PairRuleTable, AcceptsDuplicateIdenticalRules) {
  // Registering the same transition twice is deterministic: the cell
  // already holds exactly this outcome. Regression for the bug where
  // any occupied cell was treated as a conflict, kicking protocols off
  // the agent fast path.
  core::ProtocolBuilder b;
  const auto A = b.add_state("A", false);
  const auto B = b.add_state("B", true);
  b.add_input(A);
  b.add_pair_rule("convert", A, B, B, B);
  b.add_pair_rule("convert_again", A, B, B, B);
  const auto table = sim::PairRuleTable::build(b.build());
  ASSERT_TRUE(table.has_value());
  const sim::PairRuleTable::Outcome* cell =
      table->rule(static_cast<std::uint32_t>(A),
                  static_cast<std::uint32_t>(B));
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->first, static_cast<std::uint32_t>(B));
  EXPECT_EQ(cell->second, static_cast<std::uint32_t>(B));
}

TEST(PairRuleTable, RejectsConflictingRulesOnSamePrePair) {
  core::ProtocolBuilder b;
  const auto A = b.add_state("A", false);
  const auto B = b.add_state("B", true);
  b.add_input(A);
  b.add_pair_rule("toB", A, B, B, B);
  b.add_pair_rule("toA", A, B, A, A);
  EXPECT_FALSE(sim::PairRuleTable::build(b.build()).has_value());
}

TEST(PairRuleTable, CellsMatchTheRules) {
  // majority(): A=0, B=1, a=2, b=3; cancel A+B -> a+b,
  // recruitA A+b -> A+a, recruitB B+a -> B+b, tie a+b -> b+b.
  const auto maj = core::majority();
  const auto table = sim::PairRuleTable::build(maj.protocol);
  ASSERT_TRUE(table.has_value());
  const sim::PairRuleTable::Outcome* cancel = table->rule(0, 1);
  ASSERT_NE(cancel, nullptr);
  EXPECT_EQ(cancel->first, 2u);
  EXPECT_EQ(cancel->second, 3u);
  // The mirrored cell swaps the outcome.
  const sim::PairRuleTable::Outcome* mirrored = table->rule(1, 0);
  ASSERT_NE(mirrored, nullptr);
  EXPECT_EQ(mirrored->first, 3u);
  EXPECT_EQ(mirrored->second, 2u);
  // No rule for two strong A agents.
  EXPECT_EQ(table->rule(0, 0), nullptr);

  // Diagonal cell: threshold_belief's L0 + L0 -> L1 + L0.
  const auto belief = core::threshold_belief(3);
  const auto belief_table = sim::PairRuleTable::build(belief.protocol);
  ASSERT_TRUE(belief_table.has_value());
  const sim::PairRuleTable::Outcome* up = belief_table->rule(0, 0);
  ASSERT_NE(up, nullptr);
  // The successor multiset is {L0, L1}; which agent takes which state
  // is arbitrary for a diagonal cell (the pair draw is symmetric).
  EXPECT_EQ(std::min(up->first, up->second), 0u);
  EXPECT_EQ(std::max(up->first, up->second), 1u);
}

TEST(AgentSimulator, TracksSilenceIncrementally) {
  const auto cp = core::unary_counting(3);
  const auto table = sim::PairRuleTable::build(cp.protocol);
  ASSERT_TRUE(table.has_value());
  sim::AgentSimulator simulator(*table, cp.protocol.initial_config({12}), 7);
  const core::Count population = simulator.population();
  ASSERT_EQ(population, 12);
  ASSERT_FALSE(simulator.silent());
  while (!simulator.silent()) {
    if (!simulator.step()) continue;
    // After every productive interaction the incremental flag must
    // agree with a brute-force rescan, and the census must conserve
    // the population.
    ASSERT_EQ(simulator.silent(),
              brute_force_silent(*table, simulator.census()));
    ASSERT_EQ(core::Protocol::population(simulator.census()), population);
    ASSERT_LT(simulator.steps(), 100000u);
  }
  EXPECT_TRUE(brute_force_silent(*table, simulator.census()));
  EXPECT_GE(simulator.interactions(), simulator.steps());
}

TEST(AgentSimulator, TinyPopulationsAreSilent) {
  const auto cp = core::unary_counting(2);
  const auto table = sim::PairRuleTable::build(cp.protocol);
  ASSERT_TRUE(table.has_value());
  sim::AgentSimulator empty(*table, cp.protocol.initial_config({0}), 1);
  EXPECT_TRUE(empty.silent());
  EXPECT_FALSE(empty.step());
  sim::AgentSimulator loner(*table, cp.protocol.initial_config({1}), 1);
  EXPECT_TRUE(loner.silent());
  EXPECT_FALSE(loner.step());
  EXPECT_EQ(loner.steps(), 0u);
}

TEST(SchedulerEquivalence, UnaryCountingStatsAgree) {
  // The productive-step chains of the two schedulers are identical in
  // distribution, so their means over matched run counts must agree
  // within sampling noise (generous 20% margin; the seeds are fixed,
  // so this is deterministic).
  const auto cp = core::unary_counting(3);
  const DirectStats agent = run_agent_direct(cp, {24}, 48);
  const DirectStats count = run_count_direct(cp, {24}, 48);
  EXPECT_EQ(agent.converged, 48u);
  EXPECT_EQ(count.converged, 48u);
  EXPECT_EQ(agent.correct, 48u);
  EXPECT_EQ(count.correct, 48u);
  EXPECT_GT(agent.mean_steps, 0.0);
  EXPECT_NEAR(agent.mean_steps, count.mean_steps, 0.2 * count.mean_steps);
}

TEST(SchedulerEquivalence, Example42StatsAgree) {
  const auto cp = core::example_4_2(3);
  const DirectStats agent = run_agent_direct(cp, {5}, 48);
  const DirectStats count = run_count_direct(cp, {5}, 48);
  EXPECT_EQ(agent.converged, 48u);
  EXPECT_EQ(count.converged, 48u);
  EXPECT_EQ(agent.correct, 48u);
  EXPECT_EQ(count.correct, 48u);
  EXPECT_NEAR(agent.mean_steps, count.mean_steps, 0.2 * count.mean_steps);
}

TEST(ParallelSweep, BitIdenticalAcrossThreadCounts) {
  const auto cp = core::unary_counting(3);
  const sim::ConvergenceStats one =
      sim::measure_convergence_parallel(cp, {40}, 12, {}, 1);
  const sim::ConvergenceStats four =
      sim::measure_convergence_parallel(cp, {40}, 12, {}, 4);
  EXPECT_EQ(one.runs, four.runs);
  EXPECT_EQ(one.converged, four.converged);
  EXPECT_EQ(one.correct, four.correct);
  // Bit-identical, not merely close: per-run seeds and the
  // index-ordered aggregation make thread count irrelevant.
  EXPECT_EQ(one.mean_steps, four.mean_steps);
  EXPECT_EQ(one.max_steps_observed, four.max_steps_observed);

  const sim::ConvergenceStats serial = sim::measure_convergence(cp, {40}, 12);
  EXPECT_EQ(serial.mean_steps, one.mean_steps);
  EXPECT_EQ(serial.max_steps_observed, one.max_steps_observed);
}

TEST(ParallelSweep, CountFallbackMatchesRunToSilence) {
  // The destructive variant cannot compile to a pair table, so the
  // sweep must take the count path -- whose runs are exactly
  // run_to_silence with seeds options.seed + r.
  const auto cp = core::destructive_unary_counting(3);
  ASSERT_FALSE(sim::PairRuleTable::build(cp.protocol).has_value());
  sim::RunOptions options;
  options.seed = 77;
  const sim::ConvergenceStats stats =
      sim::measure_convergence_parallel(cp, {6}, 3, options, 2);
  EXPECT_EQ(stats.converged, 3u);
  EXPECT_EQ(stats.correct, 3u);
  double total = 0.0;
  double observed_max = 0.0;
  for (std::size_t r = 0; r < 3; ++r) {
    sim::RunOptions per_run = options;
    per_run.seed = options.seed + r;
    const sim::SilenceRun run =
        sim::run_to_silence(cp.protocol, {6}, per_run);
    EXPECT_TRUE(run.silent);
    total += static_cast<double>(run.steps);
    observed_max =
        std::max(observed_max, static_cast<double>(run.steps));
  }
  EXPECT_EQ(stats.mean_steps, total / 3.0);
  EXPECT_EQ(stats.max_steps_observed, observed_max);
}

// Drives seeded sharded simulations to silence directly.
DirectStats run_sharded_direct(const core::ConstructedProtocol& cp,
                               const std::vector<core::Count>& input,
                               std::size_t runs,
                               const sim::ShardedOptions& options) {
  const auto table = sim::PairRuleTable::build(cp.protocol);
  DirectStats stats;
  if (!table) {
    ADD_FAILURE() << "protocol did not compile to a pair table";
    return stats;
  }
  const bool expected = cp.predicate(input);
  const core::Config initial = cp.protocol.initial_config(input);
  double total = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    sim::ShardedSimulator simulator(*table, initial, 1000 + r, options);
    simulator.run(2000000);
    if (simulator.silent()) {
      ++stats.converged;
      const sim::OutputSummary out =
          sim::summarize_output(cp.protocol, simulator.census());
      if (out.unanimous(expected)) ++stats.correct;
    }
    total += static_cast<double>(simulator.steps());
  }
  stats.mean_steps = total / static_cast<double>(runs);
  return stats;
}

// Same measurement through the census scheduler.
DirectStats run_census_direct(const core::ConstructedProtocol& cp,
                              const std::vector<core::Count>& input,
                              std::size_t runs) {
  const auto table = sim::PairRuleTable::build(cp.protocol);
  DirectStats stats;
  if (!table) {
    ADD_FAILURE() << "protocol did not compile to a pair table";
    return stats;
  }
  const bool expected = cp.predicate(input);
  const core::Config initial = cp.protocol.initial_config(input);
  double total = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    sim::CensusSimulator simulator(*table, initial, 1000 + r);
    while (simulator.steps() < 2000000 && simulator.step()) {
    }
    if (simulator.silent()) {
      ++stats.converged;
      const sim::OutputSummary out =
          sim::summarize_output(cp.protocol, simulator.census());
      if (out.unanimous(expected)) ++stats.correct;
    }
    total += static_cast<double>(simulator.steps());
  }
  stats.mean_steps = total / static_cast<double>(runs);
  return stats;
}

TEST(ShardedSimulator, OneShardIsBitIdenticalToAgentSimulator) {
  // The 1-shard contract: one slice, no exchange, the very RNG draw
  // sequence of AgentSimulator -- the chains must match bit for bit,
  // epoch after epoch, in census, steps, raw draws and the
  // enabled-pair count.
  const auto cp = core::unary_counting(4);
  const auto table = sim::PairRuleTable::build(cp.protocol);
  ASSERT_TRUE(table.has_value());
  const core::Config initial = cp.protocol.initial_config({1000});
  sim::AgentSimulator agent(*table, initial, 99);
  sim::ShardedOptions options;
  options.shards = 1;
  options.workers = 1;
  options.batch = 512;
  sim::ShardedSimulator sharded(*table, initial, 99, options);
  for (int e = 0; e < 20; ++e) {
    sharded.epoch();
    for (std::uint64_t k = 0; k < 512; ++k) agent.step();
    ASSERT_EQ(agent.census(), sharded.census()) << "epoch " << e;
    ASSERT_EQ(agent.steps(), sharded.steps()) << "epoch " << e;
    ASSERT_EQ(agent.interactions(), sharded.interactions()) << "epoch " << e;
    ASSERT_EQ(agent.enabled_pairs(), sharded.enabled_pairs()) << "epoch " << e;
  }
}

TEST(ShardedSimulator, SeedDeterministicAndWorkerCountInvariant) {
  // Same (seed, shards) => bit-identical chain; worker threads only
  // decide where a shard's batch executes, never what it computes.
  const auto cp = core::unary_counting(4);
  const auto table = sim::PairRuleTable::build(cp.protocol);
  ASSERT_TRUE(table.has_value());
  const core::Config initial = cp.protocol.initial_config({20000});
  sim::ShardedOptions serial;
  serial.shards = 4;
  serial.workers = 1;
  serial.batch = 256;
  sim::ShardedOptions threaded = serial;
  threaded.workers = 4;
  sim::ShardedSimulator a(*table, initial, 7, serial);
  sim::ShardedSimulator b(*table, initial, 7, threaded);
  sim::ShardedSimulator c(*table, initial, 7, threaded);
  ASSERT_EQ(b.num_workers(), 4u);
  for (int e = 0; e < 40; ++e) {
    a.epoch();
    b.epoch();
    c.epoch();
  }
  EXPECT_EQ(a.census(), b.census());
  EXPECT_EQ(a.steps(), b.steps());
  EXPECT_EQ(a.interactions(), b.interactions());
  EXPECT_EQ(a.cross_swaps(), b.cross_swaps());
  EXPECT_EQ(b.census(), c.census());
  EXPECT_EQ(b.steps(), c.steps());
}

TEST(ShardedSimulator, ConservesPopulationAndDetectsSilence) {
  // Cross-shard exchange must conserve the census it permutes, and the
  // barrier silence check must agree with a brute-force rescan.
  const auto cp = core::unary_counting(3);
  const auto table = sim::PairRuleTable::build(cp.protocol);
  ASSERT_TRUE(table.has_value());
  sim::ShardedOptions options;
  options.shards = 3;
  options.workers = 1;
  options.batch = 32;
  options.exchange_shift = 0;  // maximal exchange stress
  sim::ShardedSimulator simulator(
      *table, cp.protocol.initial_config({120}), 5, options);
  const core::Count population = simulator.population();
  ASSERT_EQ(population, 120);
  int epochs = 0;
  while (simulator.epoch()) {
    ASSERT_EQ(core::Protocol::population(simulator.census()), population);
    ASSERT_EQ(simulator.silent(),
              brute_force_silent(*table, simulator.census()));
    ASSERT_LT(++epochs, 100000);
  }
  EXPECT_TRUE(simulator.silent());
  EXPECT_TRUE(brute_force_silent(*table, simulator.census()));
  EXPECT_GT(simulator.cross_swaps(), 0u);
  EXPECT_GE(simulator.interactions(), simulator.steps());
}

TEST(SchedulerEquivalence, ShardedMatchesAgentDistribution) {
  // The mixing argument in sim/sharded.h: sharded draws with periodic
  // cross-shard exchange preserve the uniform-pair law up to O(K/m)
  // per-draw bias. Empirically the mean convergence time over matched
  // run counts must agree with AgentSimulator within sampling noise
  // (the seeds are fixed, so this is deterministic).
  const auto cp = core::unary_counting(3);
  sim::ShardedOptions options;
  options.shards = 4;
  options.workers = 1;
  options.batch = 64;
  const DirectStats agent = run_agent_direct(cp, {2048}, 12);
  const DirectStats sharded = run_sharded_direct(cp, {2048}, 12, options);
  EXPECT_EQ(agent.converged, 12u);
  EXPECT_EQ(sharded.converged, 12u);
  EXPECT_EQ(agent.correct, 12u);
  EXPECT_EQ(sharded.correct, 12u);
  EXPECT_GT(agent.mean_steps, 0.0);
  EXPECT_NEAR(agent.mean_steps, sharded.mean_steps, 0.2 * agent.mean_steps);
}

TEST(SchedulerEquivalence, CensusMatchesAgentDistribution) {
  // Conditional on productivity the census scheduler samples the very
  // cell law of the agent scheduler, so the productive chains are
  // equal in distribution -- not just close.
  const auto cp = core::unary_counting(3);
  const DirectStats agent = run_agent_direct(cp, {500}, 32);
  const DirectStats census = run_census_direct(cp, {500}, 32);
  EXPECT_EQ(agent.converged, 32u);
  EXPECT_EQ(census.converged, 32u);
  EXPECT_EQ(agent.correct, 32u);
  EXPECT_EQ(census.correct, 32u);
  EXPECT_NEAR(agent.mean_steps, census.mean_steps, 0.2 * agent.mean_steps);
}

TEST(CensusSimulator, TracksSilenceExactly) {
  const auto cp = core::unary_counting(3);
  const auto table = sim::PairRuleTable::build(cp.protocol);
  ASSERT_TRUE(table.has_value());
  sim::CensusSimulator simulator(*table, cp.protocol.initial_config({12}), 7);
  const core::Count population = simulator.population();
  ASSERT_EQ(population, 12);
  ASSERT_FALSE(simulator.silent());
  while (simulator.step()) {
    ASSERT_EQ(simulator.silent(),
              brute_force_silent(*table, simulator.census()));
    ASSERT_EQ(core::Protocol::population(simulator.census()), population);
    ASSERT_LT(simulator.steps(), 100000u);
  }
  EXPECT_TRUE(simulator.silent());
  EXPECT_TRUE(brute_force_silent(*table, simulator.census()));
  // The geometric null skip accounts at least one draw per productive
  // step, so the sampled raw-draw total dominates the productive one.
  EXPECT_GE(simulator.interactions(), simulator.steps());
  EXPECT_GT(simulator.rebuilds(), 0u);
}

TEST(CensusSimulator, TinyPopulationsAreSilent) {
  const auto cp = core::unary_counting(2);
  const auto table = sim::PairRuleTable::build(cp.protocol);
  ASSERT_TRUE(table.has_value());
  sim::CensusSimulator empty(*table, cp.protocol.initial_config({0}), 1);
  EXPECT_TRUE(empty.silent());
  EXPECT_FALSE(empty.step());
  sim::CensusSimulator loner(*table, cp.protocol.initial_config({1}), 1);
  EXPECT_TRUE(loner.silent());
  EXPECT_FALSE(loner.step());
  EXPECT_EQ(loner.steps(), 0u);
}

TEST(DispatchHeuristic, PicksByPopulationAndStateCount) {
  const sim::RunOptions automatic;
  // No pair table: everything degrades to the count scheduler.
  EXPECT_EQ(sim::planned_scheduler(automatic, false, 5, 100),
            sim::SchedulerChoice::kCount);
  // Small populations stay on the plain agent array.
  EXPECT_EQ(sim::planned_scheduler(automatic, true, 5, 100),
            sim::SchedulerChoice::kAgent);
  // Small state space + large population: census path.
  EXPECT_EQ(sim::planned_scheduler(automatic, true, 5, 1 << 16),
            sim::SchedulerChoice::kCensus);
  EXPECT_EQ(sim::planned_scheduler(automatic, true, 5, core::Count{1} << 30),
            sim::SchedulerChoice::kCensus);
  // Large state space: census is out; sharded once the agent array
  // outgrows the cache.
  EXPECT_EQ(sim::planned_scheduler(automatic, true, 100, 1 << 16),
            sim::SchedulerChoice::kAgent);
  EXPECT_EQ(sim::planned_scheduler(automatic, true, 100, core::Count{1} << 22),
            sim::SchedulerChoice::kSharded);
  // Forcing overrides the heuristic but never conjures a pair table.
  sim::RunOptions forced;
  forced.scheduler = sim::SchedulerChoice::kSharded;
  EXPECT_EQ(sim::planned_scheduler(forced, true, 5, 100),
            sim::SchedulerChoice::kSharded);
  EXPECT_EQ(sim::planned_scheduler(forced, false, 5, 100),
            sim::SchedulerChoice::kCount);
  forced.scheduler = sim::SchedulerChoice::kCount;
  EXPECT_EQ(sim::planned_scheduler(forced, true, 5, core::Count{1} << 30),
            sim::SchedulerChoice::kCount);
}

TEST(DispatchHeuristic, ForcedSchedulersAgreeOnOutcomes) {
  // All four schedulers share the productive-step law, so forcing any
  // of them through the sweep must reproduce the same convergence and
  // correctness verdicts on a protocol every path can run.
  const auto cp = core::unary_counting(3);
  for (const sim::SchedulerChoice choice :
       {sim::SchedulerChoice::kAgent, sim::SchedulerChoice::kSharded,
        sim::SchedulerChoice::kCensus, sim::SchedulerChoice::kCount}) {
    sim::RunOptions options;
    options.scheduler = choice;
    options.shards = 2;
    const sim::ConvergenceStats stats =
        sim::measure_convergence(cp, {40}, 6, options);
    EXPECT_EQ(stats.converged, 6u) << static_cast<int>(choice);
    EXPECT_EQ(stats.correct, 6u) << static_cast<int>(choice);
    EXPECT_GT(stats.mean_steps, 0.0) << static_cast<int>(choice);
  }
}

TEST(DestructiveUnary, ComputesTheSamePredicate) {
  const auto cp = core::destructive_unary_counting(3);
  const sim::ConvergenceStats above = sim::measure_convergence(cp, {5}, 3);
  EXPECT_EQ(above.correct, 3u);
  const sim::ConvergenceStats below = sim::measure_convergence(cp, {2}, 3);
  EXPECT_EQ(below.correct, 3u);
}
