// Concurrency stress tests for the observability layer and the
// parallel sweep runner. These are the workloads the sanitizer CI
// jobs (PPSC_SANITIZE=thread in particular) exist to check: they
// deliberately overlap writers with readers -- trace-ring appends
// racing collect() during ring wrap, metric publishes racing
// snapshot() across short-lived threads, sim/parallel sweeps racing a
// registry reader -- and assert that nothing tears. Under a plain
// build they are functional tests; under TSan they are the race
// detectors the static-analysis gate blocks on (docs/static-analysis.md).
//
// Like the other obs suites, everything runs against the process
// globals; each test resets the registries and leaves them disabled.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/constructions.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"
#include "sim/sharded.h"

namespace {

using ppsc::obs::MetricRegistry;
using ppsc::obs::ScopedSpan;
using ppsc::obs::TraceEvent;
using ppsc::obs::TraceRegistry;

#if PPSC_OBS_ENABLED

// Writer names indexed by writer id; events are validated against
// this table, so a torn slot (name from one writer, payload from
// another) cannot go unnoticed.
constexpr const char* kWriterNames[] = {"writer.0", "writer.1", "writer.2",
                                        "writer.3"};
constexpr std::size_t kWriters = 4;

// Concurrent ring writers past the wrap point, with the main thread
// collecting and exporting the whole time. The seqlock slots must
// never yield a torn event: every collected event's payload has to be
// internally consistent (name matches the writer id encoded in its
// arg, end = start + 1).
TEST(ConcurrencyTrace, CollectRacesWritersThroughRingWrap) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.reset();
  registry.set_enabled(true);

  // Enough appends per writer to lap the ring (capacity 2^16).
  const std::uint64_t per_writer = TraceRegistry::kRingCapacity + 4096;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, per_writer]() {
      for (std::uint64_t i = 0; i < per_writer; ++i) {
        TraceEvent event;
        event.name = kWriterNames[w];
        event.category = "stress";
        event.t_start_ns = 1 + i;
        event.t_end_ns = 2 + i;
        event.add_arg("writer", w);
        event.add_arg("i", i);
        TraceRegistry::global().append(event);
      }
    });
  }

  // Racing phase: collect repeatedly while the writers lap their
  // rings. Every event a racing collect returns must be internally
  // consistent -- the seqlock is allowed to *skip* in-flight slots,
  // never to tear one.
  for (int pass = 0; pass < 64; ++pass) {
    const std::vector<TraceEvent> events = registry.collect();
    for (const TraceEvent& e : events) {
      ASSERT_EQ(std::string(e.category), "stress");
      ASSERT_EQ(e.num_args, 2u);
      const std::uint64_t w = e.args[0].value;
      ASSERT_LT(w, kWriters);
      ASSERT_EQ(std::string(e.name), kWriterNames[w]);
      ASSERT_EQ(e.t_end_ns, e.t_start_ns + 1);
      ASSERT_EQ(e.args[1].value, e.t_start_ns - 1);
    }
  }

  for (std::thread& t : writers) t.join();

  // Quiescent now: the collect is complete. Each ring kept the newest
  // kRingCapacity events; the rest are accounted as dropped.
  const std::vector<TraceEvent> final_events = registry.collect();
  EXPECT_EQ(final_events.size(), kWriters * TraceRegistry::kRingCapacity);
  EXPECT_EQ(registry.dropped(),
            kWriters * (per_writer - TraceRegistry::kRingCapacity));
  registry.reset();
  registry.set_enabled(false);
}

// The satellite coverage ask: concurrent snapshot/export calls racing
// real ScopedSpan writers (RAII producers, live clock), not hand-built
// events. TSan-clean and tear-free.
TEST(ConcurrencyTrace, ExportRacesScopedSpanWriters) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.reset();
  registry.set_enabled(true);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < 2; ++w) {
    writers.emplace_back([&stop]() {
      while (!stop.load(std::memory_order_acquire)) {
        ScopedSpan outer("stress.outer", "stress");
        outer.arg("k", 1);
        ScopedSpan inner("stress.inner", "stress");
      }
    });
  }

  for (int pass = 0; pass < 32; ++pass) {
    const std::vector<TraceEvent> events = registry.collect();
    for (const TraceEvent& e : events) {
      const std::string name(e.name);
      ASSERT_TRUE(name == "stress.outer" || name == "stress.inner");
      ASSERT_LE(e.t_start_ns, e.t_end_ns);
    }
    // The JSON exporter shares collect(); exercise it under race too.
    const std::string json = registry.to_chrome_json();
    ASSERT_NE(json.find("traceEvents"), std::string::npos);
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : writers) t.join();
  registry.reset();
  registry.set_enabled(false);
}

// Thread churn against the metric registry: batches of short-lived
// threads publish counters, histograms and timers while the main
// thread snapshots concurrently. Per-thread sheets are registered
// under the registry mutex and merged at snapshot, so the final
// quiescent snapshot must account for every publish exactly once.
TEST(ConcurrencyMetrics, SnapshotRacesPublishersUnderThreadChurn) {
  MetricRegistry& registry = MetricRegistry::global();
  registry.reset();
  registry.set_enabled(true);

  constexpr int kBatches = 8;
  constexpr int kThreadsPerBatch = 4;
  constexpr std::uint64_t kAddsPerThread = 256;
  for (int batch = 0; batch < kBatches; ++batch) {
    std::vector<std::thread> publishers;
    publishers.reserve(kThreadsPerBatch);
    for (int t = 0; t < kThreadsPerBatch; ++t) {
      publishers.emplace_back([]() {
        MetricRegistry& reg = MetricRegistry::global();
        for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
          reg.add("stress.counter", 1);
          reg.record("stress.histogram", i);
        }
        ppsc::obs::ScopedTimer timer("stress.op");
      });
    }
    // Snapshot while the batch runs: in-flight deltas may or may not
    // be visible, but the merge itself must be race-free and every
    // observed value monotone in the final tally's direction.
    const ppsc::obs::MetricSnapshot racing = registry.snapshot();
    const auto it = racing.counters.find("stress.counter");
    if (it != racing.counters.end()) {
      EXPECT_LE(it->second, static_cast<std::uint64_t>(kBatches) *
                                kThreadsPerBatch * kAddsPerThread);
    }
    for (std::thread& t : publishers) t.join();
  }

  const ppsc::obs::MetricSnapshot final_snapshot = registry.snapshot();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kBatches) * kThreadsPerBatch *
      kAddsPerThread;
  EXPECT_EQ(final_snapshot.counters.at("stress.counter"), expected);
  EXPECT_EQ(final_snapshot.histograms.at("stress.histogram").count, expected);
  EXPECT_EQ(final_snapshot.counters.at("stress.op.calls"),
            static_cast<std::uint64_t>(kBatches) * kThreadsPerBatch);
  registry.reset();
  registry.set_enabled(false);
}

// A full instrumented parallel sweep racing a registry reader thread:
// the production concurrency pattern the sharding tentpole will lean
// on. Also re-asserts the 1-vs-N bit-determinism contract with
// observability enabled and a reader hammering both registries.
TEST(ConcurrencyParallel, SweepRacesRegistryReaders) {
  MetricRegistry& metrics = MetricRegistry::global();
  TraceRegistry& traces = TraceRegistry::global();
  metrics.reset();
  traces.reset();
  metrics.set_enabled(true);
  traces.set_enabled(true);

  const ppsc::core::ConstructedProtocol cp = ppsc::core::unary_counting(4);
  const std::vector<ppsc::core::Count> input = {5};
  ppsc::sim::RunOptions options;
  options.seed = 2024;
  options.max_steps = 20000;

  std::atomic<bool> stop{false};
  std::thread reader([&stop]() {
    while (!stop.load(std::memory_order_acquire)) {
      (void)MetricRegistry::global().snapshot();
      (void)TraceRegistry::global().collect();
      (void)TraceRegistry::global().dropped();
    }
  });

  const ppsc::sim::ConvergenceStats one =
      ppsc::sim::measure_convergence_parallel(cp, input, 16, options, 1);
  const ppsc::sim::ConvergenceStats four =
      ppsc::sim::measure_convergence_parallel(cp, input, 16, options, 4);
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(one.converged, four.converged);
  EXPECT_EQ(one.correct, four.correct);
  EXPECT_EQ(one.mean_steps, four.mean_steps);
  EXPECT_EQ(one.max_steps_observed, four.max_steps_observed);

  metrics.reset();
  traces.reset();
  metrics.set_enabled(false);
  traces.set_enabled(false);
}

// The sharded scheduler's hottest race surface: cross-shard exchange
// and the global census refresh run on the main thread between epoch
// barriers while four workers drain the intra-shard batches inside
// them. Maximal exchange pressure (shift 0: one transposition per
// intra-shard draw) with the smallest batch keeps the barriers firing
// as often as possible. Under TSan this proves the mutex/cv barrier
// orders every slot write; under a plain build it is a determinism
// and conservation test.
TEST(ConcurrencySharded, ExchangeRacesIntraShardBatches) {
  const ppsc::core::ConstructedProtocol cp = ppsc::core::unary_counting(4);
  const auto table = ppsc::sim::PairRuleTable::build(cp.protocol);
  ASSERT_TRUE(table.has_value());
  const ppsc::core::Config initial = cp.protocol.initial_config({4000});

  ppsc::sim::ShardedOptions options;
  options.shards = 8;
  options.workers = 4;
  options.batch = 64;
  options.exchange_shift = 0;
  ppsc::sim::ShardedSimulator threaded(*table, initial, 31, options);
  options.workers = 1;
  ppsc::sim::ShardedSimulator serial(*table, initial, 31, options);
  ASSERT_EQ(threaded.num_workers(), 4u);

  const ppsc::core::Count population = threaded.population();
  for (int e = 0; e < 200; ++e) {
    threaded.epoch();
    serial.epoch();
    ASSERT_EQ(ppsc::core::Protocol::population(threaded.census()),
              population);
  }
  // Worker interleaving must be invisible in every observable.
  EXPECT_EQ(threaded.census(), serial.census());
  EXPECT_EQ(threaded.steps(), serial.steps());
  EXPECT_EQ(threaded.interactions(), serial.interactions());
  EXPECT_EQ(threaded.cross_swaps(), serial.cross_swaps());
  EXPECT_GT(threaded.cross_swaps(), 0u);
}

// Registry readers hammering snapshot/collect while sharded workers
// run epochs and publish -- the satellite's "snapshot/collect racing
// shard workers" case, plus the worker-count bit-determinism contract
// with observability enabled the whole time.
TEST(ConcurrencySharded, ReadersRaceShardWorkers) {
  MetricRegistry& metrics = MetricRegistry::global();
  TraceRegistry& traces = TraceRegistry::global();
  metrics.reset();
  traces.reset();
  metrics.set_enabled(true);
  traces.set_enabled(true);

  const ppsc::core::ConstructedProtocol cp = ppsc::core::unary_counting(4);
  const auto table = ppsc::sim::PairRuleTable::build(cp.protocol);
  ASSERT_TRUE(table.has_value());
  const ppsc::core::Config initial = cp.protocol.initial_config({4000});

  std::atomic<bool> stop{false};
  std::thread reader([&stop]() {
    while (!stop.load(std::memory_order_acquire)) {
      (void)MetricRegistry::global().snapshot();
      (void)TraceRegistry::global().collect();
    }
  });

  ppsc::sim::ShardedOptions options;
  options.shards = 4;
  options.workers = 4;
  options.batch = 128;
  ppsc::sim::ShardedSimulator threaded(*table, initial, 77, options);
  for (int e = 0; e < 100; ++e) threaded.epoch();
  threaded.publish_metrics();
  options.workers = 1;
  ppsc::sim::ShardedSimulator serial(*table, initial, 77, options);
  for (int e = 0; e < 100; ++e) serial.epoch();
  serial.publish_metrics();

  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(threaded.census(), serial.census());
  EXPECT_EQ(threaded.steps(), serial.steps());

  // Quiescent: both runs' publishes are merged exactly once.
  const ppsc::obs::MetricSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("sim.shard.runs"), 2u);
  EXPECT_EQ(snapshot.counters.at("sim.shard.productive"),
            threaded.steps() + serial.steps());
  EXPECT_EQ(snapshot.counters.at("sim.shard.draws"),
            threaded.interactions() + serial.interactions());

  metrics.reset();
  traces.reset();
  metrics.set_enabled(false);
  traces.set_enabled(false);
}

#else  // !PPSC_OBS_ENABLED

TEST(ConcurrencyObsOff, RegistriesAreInert) {
  EXPECT_FALSE(TraceRegistry::global().enabled());
  EXPECT_FALSE(MetricRegistry::global().enabled());
  EXPECT_TRUE(TraceRegistry::global().collect().empty());
}

#endif  // PPSC_OBS_ENABLED

}  // namespace
