// Boolean closure: predicate algebra, product cost accounting, and
// exhaustive verification of small composites.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/combinators.h"
#include "core/constructions.h"
#include "verify/stable.h"

namespace core = ppsc::core;
namespace verify = ppsc::verify;

TEST(Negate, FlipsOutputsAndPredicate) {
  const auto cp = core::unary_counting(3);
  const auto neg = core::negate(cp);
  EXPECT_EQ(neg.protocol.num_states(), cp.protocol.num_states());
  EXPECT_EQ(neg.protocol.net().num_transitions(),
            cp.protocol.net().num_transitions());
  for (std::size_t q = 0; q < cp.protocol.num_states(); ++q) {
    EXPECT_NE(neg.protocol.output(q), cp.protocol.output(q));
  }
  EXPECT_TRUE(neg.predicate({2}));
  EXPECT_FALSE(neg.predicate({3}));
  EXPECT_EQ(neg.predicate.name, "not(x >= 3)");
}

TEST(Product, StateCountsMultiply) {
  const auto lhs = core::unary_counting(2);  // 6 states
  const auto rhs = core::modulo_counting(2, 1);  // 4 states
  const auto both = core::conjunction(lhs, rhs);
  EXPECT_EQ(both.protocol.num_states(),
            lhs.protocol.num_states() * rhs.protocol.num_states());
  EXPECT_EQ(both.protocol.width(), 2);
  // Predicate: x >= 2 and x odd.
  EXPECT_FALSE(both.predicate({1}));
  EXPECT_FALSE(both.predicate({2}));
  EXPECT_TRUE(both.predicate({3}));
  EXPECT_TRUE(both.predicate({5}));
}

TEST(Product, DisjunctionPredicate) {
  const auto either =
      core::disjunction(core::unary_counting(4), core::modulo_counting(3, 0));
  EXPECT_TRUE(either.predicate({3}));   // 3 mod 3 == 0
  EXPECT_TRUE(either.predicate({5}));   // 5 >= 4
  EXPECT_FALSE(either.predicate({2}));
}

TEST(Product, EmitsNoDuplicateTransitions) {
  // Symmetric operand rules must not be instantiated twice per
  // unordered pair of carried states.
  const auto both =
      core::conjunction(core::unary_counting(2), core::modulo_counting(2, 1));
  std::set<std::pair<std::vector<core::Count>, std::vector<core::Count>>> seen;
  for (const auto& t : both.protocol.net().transitions()) {
    EXPECT_TRUE(seen.emplace(t.pre, t.post).second)
        << "duplicate transition " << t.name;
  }
}

TEST(Product, RejectsLeaderfulAndWideOperands) {
  EXPECT_THROW(
      core::conjunction(core::example_4_2(2), core::unary_counting(2)),
      std::invalid_argument);
  // Example 4.1 has a width-n transition.
  EXPECT_THROW(
      core::conjunction(core::example_4_1(3), core::unary_counting(2)),
      std::invalid_argument);
}

TEST(Product, CompositesVerifyExhaustively) {
  const auto neg = core::negate(core::unary_counting(2));
  EXPECT_TRUE(
      verify::check_up_to(neg.protocol, neg.predicate, 4).verified());

  const auto both =
      core::conjunction(core::unary_counting(2), core::modulo_counting(2, 1));
  EXPECT_TRUE(
      verify::check_up_to(both.protocol, both.predicate, 5).verified());
}

TEST(Interval, PredicateAndVerification) {
  const auto cp = core::interval_counting(2, 4);
  EXPECT_EQ(cp.predicate.name, "2 <= x <= 4");
  EXPECT_FALSE(cp.predicate({1}));
  EXPECT_TRUE(cp.predicate({2}));
  EXPECT_TRUE(cp.predicate({4}));
  EXPECT_FALSE(cp.predicate({5}));
  EXPECT_THROW(core::interval_counting(0, 3), std::invalid_argument);
  EXPECT_THROW(core::interval_counting(4, 2), std::invalid_argument);
  EXPECT_TRUE(
      verify::check_up_to(cp.protocol, cp.predicate, 6).verified());
}
