// solver/diophantine: Hilbert bases by Contejean-Devie completion,
// differentially tested against brute-force minimal solutions, plus the
// Pottier norm bound and the completeness flag under caps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "solver/diophantine.h"
#include "util/rng.h"

namespace solver = ppsc::solver;

namespace {

using Vec = std::vector<std::uint64_t>;

bool is_solution(const solver::HomogeneousSystem& system, const Vec& x) {
  for (const auto& row : system.rows) {
    std::int64_t sum = 0;
    for (std::size_t v = 0; v < system.num_vars; ++v) {
      sum += row[v] * static_cast<std::int64_t>(x[v]);
    }
    if (sum != 0) return false;
  }
  return true;
}

bool strictly_below(const Vec& x, const Vec& y) {
  bool some_less = false;
  for (std::size_t v = 0; v < x.size(); ++v) {
    if (x[v] > y[v]) return false;
    if (x[v] < y[v]) some_less = true;
  }
  return some_less;
}

// All minimal nonzero solutions with every entry <= box. A solution
// whose entries fit in the box is globally minimal iff it is minimal
// among boxed solutions (any dominated witness also fits in the box),
// so this set equals the Hilbert basis restricted to the box.
std::vector<Vec> brute_force_minimal(const solver::HomogeneousSystem& system,
                                     std::uint64_t box) {
  std::vector<Vec> solutions;
  Vec x(system.num_vars, 0);
  while (true) {
    std::size_t v = 0;
    while (v < system.num_vars && x[v] == box) {
      x[v] = 0;
      ++v;
    }
    if (v == system.num_vars) break;
    ++x[v];
    if (is_solution(system, x)) solutions.push_back(x);
  }
  std::vector<Vec> minimal;
  for (const Vec& candidate : solutions) {
    bool dominated = false;
    for (const Vec& other : solutions) {
      if (strictly_below(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(candidate);
  }
  std::sort(minimal.begin(), minimal.end());
  return minimal;
}

}  // namespace

TEST(HilbertBasis, PinnedSingleEquation) {
  // 2x - 3y = 0: the unique minimal solution is (3, 2).
  solver::HomogeneousSystem system;
  system.num_vars = 2;
  system.rows = {{2, -3}};
  const auto result = solver::hilbert_basis(system);
  EXPECT_TRUE(result.complete);
  ASSERT_EQ(result.basis.size(), 1u);
  EXPECT_EQ(result.basis[0], (Vec{3, 2}));
}

TEST(HilbertBasis, AllPositiveRowHasEmptyBasis) {
  // x + 2y = 0 has no nonzero nonnegative solution.
  solver::HomogeneousSystem system;
  system.num_vars = 2;
  system.rows = {{1, 2}};
  const auto result = solver::hilbert_basis(system);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.basis.empty());
}

TEST(HilbertBasis, EmptySystemBasisIsUnitVectors) {
  solver::HomogeneousSystem system;
  system.num_vars = 3;
  const auto result = solver::hilbert_basis(system);
  EXPECT_TRUE(result.complete);
  std::vector<Vec> basis = result.basis;
  std::sort(basis.begin(), basis.end());
  EXPECT_EQ(basis,
            (std::vector<Vec>{{0, 0, 1}, {0, 1, 0}, {1, 0, 0}}));
}

TEST(HilbertBasis, RejectsRowSizeMismatch) {
  solver::HomogeneousSystem system;
  system.num_vars = 3;
  system.rows = {{1, -1}};
  EXPECT_THROW(solver::hilbert_basis(system), std::invalid_argument);
}

TEST(HilbertBasis, CapYieldsIncompleteResult) {
  solver::HomogeneousSystem system;
  system.num_vars = 2;
  system.rows = {{1, -1}};
  solver::HilbertOptions options;
  options.max_nodes = 1;
  const auto result = solver::hilbert_basis(system, options);
  EXPECT_FALSE(result.complete);
}

TEST(HilbertBasis, DifferentialAgainstBruteForce) {
  // Random small systems: the basis restricted to a box must equal the
  // brute-force minimal boxed solutions (see brute_force_minimal).
  ppsc::util::Xoshiro256 rng(77);
  const std::uint64_t kBox = 6;
  for (int trial = 0; trial < 40; ++trial) {
    solver::HomogeneousSystem system;
    system.num_vars = 2 + trial % 2;  // 2 or 3 variables
    const std::size_t rows = 1 + (trial / 2) % 2;
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<std::int64_t> row(system.num_vars);
      for (auto& coefficient : row) {
        coefficient = static_cast<std::int64_t>(rng.below(7)) - 3;
      }
      system.rows.push_back(std::move(row));
    }
    const auto result = solver::hilbert_basis(system);
    ASSERT_TRUE(result.complete);

    std::vector<Vec> boxed;
    for (const Vec& element : result.basis) {
      if (*std::max_element(element.begin(), element.end()) <= kBox) {
        boxed.push_back(element);
      }
    }
    std::sort(boxed.begin(), boxed.end());
    EXPECT_EQ(boxed, brute_force_minimal(system, kBox))
        << "trial " << trial;

    // Every basis element is a solution and respects Pottier's bound.
    const double bound = solver::log2_pottier_bound(system);
    for (const Vec& element : result.basis) {
      EXPECT_TRUE(is_solution(system, element));
      EXPECT_LE(std::log2(static_cast<double>(solver::norm_l1(element))),
                bound);
    }
  }
}
