# Runs a deterministic bench binary and diffs its stdout against the
# checked-in golden transcript. Invoked by the golden.* CTest entries:
#   cmake -DBENCH=<binary> -DGOLDEN=<file> -DOUT=<scratch> -P check_golden.cmake
#
# PPSC_BENCH_JSON is set on purpose: the golden diff then doubles as
# proof that enabling observability (metrics on, JSON report written)
# leaves bench stdout byte-identical.

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PPSC_BENCH_JSON=${OUT}.json ${BENCH}
  OUTPUT_FILE ${OUT}
  RESULT_VARIABLE bench_status)
if(NOT bench_status EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited with status ${bench_status}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_status)
if(NOT diff_status EQUAL 0)
  execute_process(COMMAND diff -u ${GOLDEN} ${OUT})
  message(FATAL_ERROR
    "golden mismatch: ${OUT} differs from ${GOLDEN}; if the change is "
    "intentional, regenerate the golden file from the new output")
endif()
