// Exact expected interaction counts: hand-solved chains (including a
// cyclic one that exercises the per-SCC solver), truncation and
// singularity reporting, and exact-vs-sampled agreement.

#include <gtest/gtest.h>

#include <cmath>

#include "core/constructions.h"
#include "core/protocol.h"
#include "sim/expected_time.h"
#include "sim/parallel.h"

namespace core = ppsc::core;
namespace sim = ppsc::sim;

namespace {

// Two states {X, Y}; t1: X+X -> X+Y, t2: X+Y -> Y+Y, t3: X+Y -> X+X.
// t3 makes the chain cyclic, so the expectation genuinely depends on
// the instantiation weights, not just on path lengths.
core::Protocol cyclic_chain() {
  core::ProtocolBuilder b;
  const std::size_t X = b.add_state("X", false);
  const std::size_t Y = b.add_state("Y", true);
  b.add_input(X);
  b.add_rule("t1", {{X, 2}}, {{X, 1}, {Y, 1}});
  b.add_rule("t2", {{X, 1}, {Y, 1}}, {{Y, 2}});
  b.add_rule("t3", {{X, 1}, {Y, 1}}, {{X, 2}});
  return b.build();
}

}  // namespace

TEST(ExpectedTime, HandSolvableTwoAgentChain) {
  // From {X:2}: fire t1 to {1,1}; there t2 (weight 1) absorbs into
  // {0,2} and t3 (weight 1) loops back to {2,0}. Hand-solving
  //   E{2,0} = 1 + E{1,1},  E{1,1} = 1 + (1/2) E{2,0}
  // gives E{1,1} = 3 and E{2,0} = 4.
  const core::Protocol protocol = cyclic_chain();
  const sim::ExpectedTimeResult result =
      sim::expected_interactions_to_silence(protocol, {2});
  EXPECT_TRUE(result.computed);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.reachable_configs, 3u);
  EXPECT_NEAR(result.expected_steps, 4.0, 1e-9);
}

TEST(ExpectedTime, HandSolvableThreeAgentChain) {
  // From {X:3} the weights differ per configuration: at {2,1} t1 has
  // weight C(2,2) = 1 while t2 and t3 have weight 2 each. Hand-solving
  //   E{3,0} = 1 + E{2,1}
  //   E{2,1} = 1 + (3/5) E{1,2} + (2/5) E{3,0}
  //   E{1,2} = 1 + (1/2) E{2,1}
  // gives E{2,1} = 20/3 and E{3,0} = 23/3.
  const core::Protocol protocol = cyclic_chain();
  const sim::ExpectedTimeResult result =
      sim::expected_interactions_to_silence(protocol, {3});
  EXPECT_TRUE(result.computed);
  EXPECT_EQ(result.reachable_configs, 4u);
  EXPECT_NEAR(result.expected_steps, 23.0 / 3.0, 1e-9);
}

TEST(ExpectedTime, AlreadySilentInitialConfig) {
  // Example 4.1 below threshold: no transition is ever enabled.
  const auto cp = core::example_4_1(3);
  const sim::ExpectedTimeResult result =
      sim::expected_interactions_to_silence(cp.protocol, {2});
  EXPECT_TRUE(result.computed);
  EXPECT_EQ(result.reachable_configs, 1u);
  EXPECT_DOUBLE_EQ(result.expected_steps, 0.0);
}

TEST(ExpectedTime, ReportsTruncation) {
  const auto cp = core::unary_counting(3);
  const sim::ExpectedTimeResult result =
      sim::expected_interactions_to_silence(cp.protocol, {8}, 10);
  EXPECT_FALSE(result.computed);
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.reachable_configs, 10u);
}

TEST(ExpectedTime, SingularWhenSilenceIsUnreachable) {
  // {X:2} <-> {X:1, Y:1} forever: no silent configuration is
  // reachable, the expectation is infinite, and the linear system is
  // singular -- reported as not computed, not as a bogus number.
  core::ProtocolBuilder b;
  const std::size_t X = b.add_state("X", false);
  const std::size_t Y = b.add_state("Y", true);
  b.add_input(X);
  b.add_rule("split", {{X, 2}}, {{X, 1}, {Y, 1}});
  b.add_rule("join", {{X, 1}, {Y, 1}}, {{X, 2}});
  const core::Protocol protocol = b.build();
  const sim::ExpectedTimeResult result =
      sim::expected_interactions_to_silence(protocol, {2});
  EXPECT_FALSE(result.computed);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.reachable_configs, 2u);
}

TEST(ExpectedTime, MatchesSampledMeanOnSmallPopulations) {
  // Populations <= 6: the exact expectation and the sampling
  // simulator's mean must agree within standard error (fixed seeds, so
  // the margins are deterministic; they sit near 3 sigma).
  sim::RunOptions options;
  options.silence_check_interval = 1;

  const auto belief = core::threshold_belief(3);
  const sim::ExpectedTimeResult belief_exact =
      sim::expected_interactions_to_silence(belief.protocol, {6});
  ASSERT_TRUE(belief_exact.computed);
  const sim::ConvergenceStats belief_sampled =
      sim::measure_convergence_parallel(belief, {6}, 400, options);
  EXPECT_EQ(belief_sampled.converged, 400u);
  EXPECT_NEAR(belief_sampled.mean_steps, belief_exact.expected_steps,
              0.15 * belief_exact.expected_steps);

  const auto maj = core::majority();
  const sim::ExpectedTimeResult maj_exact =
      sim::expected_interactions_to_silence(maj.protocol, {3, 2});
  ASSERT_TRUE(maj_exact.computed);
  const sim::ConvergenceStats maj_sampled =
      sim::measure_convergence_parallel(maj, {3, 2}, 400, options);
  EXPECT_EQ(maj_sampled.converged, 400u);
  EXPECT_NEAR(maj_sampled.mean_steps, maj_exact.expected_steps,
              0.15 * maj_exact.expected_steps);
}
