// Lemma 7.3 replacements: gcd reduction of multicycle Parikh images,
// sign-compatibility of the displacement, and the hypothesis /
// circulation negative cases.

#include <gtest/gtest.h>

#include "petri/control_net.h"
#include "solver/multicycle.h"

namespace petri = ppsc::petri;
namespace solver = ppsc::solver;
using petri::Config;
using petri::PetriNet;

namespace {

// Two controls, three edges; edge 2 is a self-loop whose underlying
// transition creates one token (the toggle_pump control net of E9).
petri::ControlStateNet sample_cnet() {
  PetriNet base(1);
  base.add(Config{0}, Config{0});
  base.add(Config{0}, Config{0});
  base.add(Config{0}, Config{1});
  petri::ControlStateNet cnet(base, 2);
  cnet.add_edge(0, 0, 1);
  cnet.add_edge(1, 1, 0);
  cnet.add_edge(0, 2, 0);
  return cnet;
}

}  // namespace

TEST(SmallMulticycle, GcdReductionPreservesSupportAndSigns) {
  const auto cnet = sample_cnet();
  const std::vector<bool> q_mask{true, true, false};
  const std::vector<std::uint64_t> phi{128, 128, 64};
  const auto small = solver::small_multicycle(cnet, phi, q_mask, 64);
  ASSERT_TRUE(small.has_value());
  EXPECT_EQ(small->parikh, (std::vector<std::uint64_t>{2, 2, 1}));
  EXPECT_EQ(small->length, 5u);
  ASSERT_TRUE(small->walk.has_value());
  EXPECT_EQ(small->walk->size(), 5u);
  // Displacement scales by 1/gcd: signs match the original.
  const auto big_delta = cnet.displacement(phi);
  const auto small_delta = cnet.displacement(small->parikh);
  ASSERT_EQ(big_delta.size(), small_delta.size());
  for (std::size_t p = 0; p < big_delta.size(); ++p) {
    EXPECT_EQ(big_delta[p] > 0, small_delta[p] > 0);
    EXPECT_EQ(big_delta[p] < 0, small_delta[p] < 0);
  }
}

TEST(SmallMulticycle, HypothesisAndCirculationNegatives) {
  const auto cnet = sample_cnet();
  const std::vector<bool> q_mask{true, true, false};
  // Some used edge occurs fewer than k times.
  EXPECT_FALSE(
      solver::small_multicycle(cnet, {128, 128, 32}, q_mask, 64).has_value());
  // Not a circulation: flow unbalanced at both controls.
  EXPECT_FALSE(
      solver::small_multicycle(cnet, {64, 0, 0}, q_mask, 64).has_value());
  // Empty multicycle.
  EXPECT_FALSE(
      solver::small_multicycle(cnet, {0, 0, 0}, q_mask, 1).has_value());
}
