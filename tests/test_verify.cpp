// Exhaustive stable-computation checks: the paper's Example 4.1/4.2
// claims become machine-checked facts for small n, and deliberately
// broken protocols are reported as NO (negative-path coverage).

#include <gtest/gtest.h>

#include "core/combinators.h"
#include "core/constructions.h"
#include "verify/stable.h"

namespace core = ppsc::core;
namespace verify = ppsc::verify;

TEST(CheckUpTo, Example41StablyComputesCounting) {
  for (core::Count n = 1; n <= 6; ++n) {
    const auto cp = core::example_4_1(n);
    const auto result = verify::check_up_to(cp.protocol, cp.predicate, n + 3);
    EXPECT_TRUE(result.verified()) << "n=" << n;
    EXPECT_EQ(result.verdicts.size(), static_cast<std::size_t>(n + 4));
  }
}

TEST(CheckUpTo, Example41ReachabilityCounts) {
  // For x < n the initial configuration is already silent; for x >= n
  // the graph is the chain fired by t_n then t_1..t_{n-1}:
  // 1 + (x - n + 1) configurations.
  const auto cp = core::example_4_1(3);
  const auto result = verify::check_up_to(cp.protocol, cp.predicate, 5);
  ASSERT_EQ(result.verdicts.size(), 6u);
  EXPECT_EQ(result.verdicts[1].reachable_configs, 1u);  // x=1
  EXPECT_EQ(result.verdicts[2].reachable_configs, 1u);  // x=2
  EXPECT_EQ(result.verdicts[3].reachable_configs, 2u);  // x=3
  EXPECT_EQ(result.verdicts[4].reachable_configs, 3u);  // x=4
  EXPECT_EQ(result.verdicts[5].reachable_configs, 4u);  // x=5
}

TEST(CheckUpTo, MutatedExample41IsRejected) {
  // Same two states, but the wide transition fires after only n-1
  // agents -- the protocol now wrongly accepts x = n-1.
  const core::Count n = 3;
  core::ProtocolBuilder b;
  const auto A = b.add_state("A", false);
  const auto B = b.add_state("B", true);
  b.add_input(A);
  b.add_rule("t_bad", {{A, n - 1}}, {{B, n - 1}});
  b.add_rule("t1", {{B, 1}, {A, 1}}, {{B, 2}});
  const core::Protocol mutated = b.build();

  const auto result =
      verify::check_up_to(mutated, core::counting_predicate(n), n + 2);
  EXPECT_FALSE(result.verified());
  // x = 2 = n-1 is the offending input: it reaches consensus 1.
  EXPECT_TRUE(result.verdicts[1].ok);   // x=1 stays all-A
  EXPECT_FALSE(result.verdicts[2].ok);  // x=2 wrongly accepts
  EXPECT_FALSE(result.verdicts[2].detail.empty());
  EXPECT_TRUE(result.verdicts[3].ok);   // x=3 still accepts, correctly
}

TEST(CheckUpTo, OutputFlipIsRejected) {
  // Flipping all outputs (negate) while keeping the original predicate
  // must fail verification on both sides of the threshold.
  const auto cp = core::example_4_1(2);
  const auto flipped = core::negate(cp);
  const auto result =
      verify::check_up_to(flipped.protocol, cp.predicate, 4);
  EXPECT_FALSE(result.verified());
}

TEST(CheckUpTo, Example42StablyComputesCounting) {
  for (core::Count n = 1; n <= 4; ++n) {
    const auto cp = core::example_4_2(n);
    const auto result = verify::check_up_to(cp.protocol, cp.predicate, n + 2);
    EXPECT_TRUE(result.verified()) << "n=" << n;
  }
}

TEST(CheckUpTo, CountingFamiliesVerifySmall) {
  for (core::Count n : {2, 4}) {
    for (const auto& family : core::counting_families(n)) {
      const auto result =
          verify::check_up_to(family.protocol, family.predicate, n + 2);
      EXPECT_TRUE(result.verified()) << family.family << " n=" << n;
    }
  }
}

TEST(CheckUpTo, ModuloAndMajorityVerifySmall) {
  const auto mod = core::modulo_counting(3, 1);
  EXPECT_TRUE(
      verify::check_up_to(mod.protocol, mod.predicate, 7).verified());

  const auto maj = core::majority();
  const auto result = verify::check_up_to(maj.protocol, maj.predicate, 3);
  EXPECT_TRUE(result.verified());
  // (bound+1)^2 input vectors for the 2-dimensional predicate.
  EXPECT_EQ(result.verdicts.size(), 16u);
}

TEST(CheckUpTo, EmptyPopulationIsVacuouslyOk) {
  const auto cp = core::example_4_1(2);
  const auto verdict = verify::check_input(cp.protocol, cp.predicate, {0});
  EXPECT_TRUE(verdict.ok);
  EXPECT_EQ(verdict.reachable_configs, 1u);
}

TEST(CheckUpTo, ConfigCapThrows) {
  const auto cp = core::example_4_2(4);
  verify::CheckOptions options;
  options.max_configs = 3;
  EXPECT_THROW(verify::check_input(cp.protocol, cp.predicate, {5}, options),
               std::runtime_error);
}

TEST(CheckUpTo, ConfigCapBoundaryIsExact) {
  // The limit is checked before a new config is recorded, so a cap of
  // exactly the reachable count succeeds and one less throws.
  const auto cp = core::example_4_1(3);
  const auto exact = verify::check_input(cp.protocol, cp.predicate, {4});
  ASSERT_TRUE(exact.ok);
  ASSERT_EQ(exact.reachable_configs, 3u);

  verify::CheckOptions options;
  options.max_configs = 3;
  EXPECT_NO_THROW(
      verify::check_input(cp.protocol, cp.predicate, {4}, options));
  options.max_configs = 2;
  EXPECT_THROW(verify::check_input(cp.protocol, cp.predicate, {4}, options),
               std::runtime_error);
}
