// Random-scheduler simulation: silence detection, consensus summaries,
// convergence statistics, and seed determinism. Also pins the table /
// formatting / RNG utilities the benches print with.

#include <gtest/gtest.h>

#include "core/constructions.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"

namespace core = ppsc::core;
namespace sim = ppsc::sim;

TEST(RunToSilence, Example41Accepts) {
  const auto cp = core::example_4_1(3);
  const auto run = sim::run_to_silence(cp.protocol, {5});
  EXPECT_TRUE(run.silent);
  EXPECT_GT(run.steps, 0u);
  EXPECT_TRUE(run.final_output.exactly_one());
  EXPECT_FALSE(run.final_output.subset_of_zero());
}

TEST(RunToSilence, Example41RejectsImmediately) {
  // x < n: the initial configuration is already silent and all-zero.
  const auto cp = core::example_4_1(3);
  const auto run = sim::run_to_silence(cp.protocol, {2});
  EXPECT_TRUE(run.silent);
  EXPECT_EQ(run.steps, 0u);
  EXPECT_TRUE(run.final_output.subset_of_zero());
}

TEST(RunToSilence, StepBudgetIsRespected) {
  const auto cp = core::unary_counting(4);
  sim::RunOptions options;
  options.max_steps = 1;
  const auto run = sim::run_to_silence(cp.protocol, {16}, options);
  EXPECT_FALSE(run.silent);
  EXPECT_EQ(run.steps, 1u);
}

TEST(RunToSilence, DeterministicForFixedSeed) {
  const auto cp = core::example_4_2(3);
  sim::RunOptions options;
  options.seed = 1234;
  const auto a = sim::run_to_silence(cp.protocol, {4}, options);
  const auto b = sim::run_to_silence(cp.protocol, {4}, options);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.final_config, b.final_config);
}

TEST(MeasureConvergence, MajorityBothSides) {
  const auto maj = core::majority();
  const auto heavy_a = sim::measure_convergence(maj, {12, 3}, 5);
  EXPECT_EQ(heavy_a.runs, 5u);
  EXPECT_EQ(heavy_a.converged, 5u);
  EXPECT_EQ(heavy_a.correct, 5u);
  EXPECT_GT(heavy_a.mean_steps, 0.0);
  EXPECT_GE(heavy_a.max_steps, heavy_a.mean_steps);

  const auto heavy_b = sim::measure_convergence(maj, {3, 12}, 5);
  EXPECT_EQ(heavy_b.correct, 5u);
}

TEST(MeasureConvergence, CountingFamiliesAtThreshold) {
  for (const auto& family : core::counting_families(4)) {
    const auto above = sim::measure_convergence(family, {6}, 3);
    EXPECT_EQ(above.correct, 3u) << family.family;
    const auto below = sim::measure_convergence(family, {3}, 3);
    EXPECT_EQ(below.correct, 3u) << family.family;
  }
}

TEST(TablePrinter, AlignsAndPads) {
  ppsc::util::TablePrinter table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer"});
  EXPECT_EQ(table.to_string(),
            "name    value\n"
            "-------------\n"
            "x       1\n"
            "longer  \n");
  EXPECT_THROW(table.add_row({"a", "b", "c"}), std::invalid_argument);
}

TEST(FormatDouble, SignificantDigits) {
  EXPECT_EQ(ppsc::util::format_double(3.14159, 3), "3.14");
  EXPECT_EQ(ppsc::util::format_double(1234567.0, 4), "1.235e+06");
  EXPECT_EQ(ppsc::util::format_double(0.0, 3), "0");
}

TEST(Xoshiro, DeterministicAndBounded) {
  ppsc::util::Xoshiro256 a(42);
  ppsc::util::Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  ppsc::util::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}
