// Random-scheduler simulation: silence detection, consensus summaries,
// convergence statistics, and seed determinism. Also pins the table /
// formatting / RNG utilities the benches print with.

#include <gtest/gtest.h>

#include "core/combinators.h"
#include "core/constructions.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/rng.h"
#include "util/table.h"
#include "verify/stable.h"

namespace core = ppsc::core;
namespace sim = ppsc::sim;

TEST(RunToSilence, Example41Accepts) {
  const auto cp = core::example_4_1(3);
  const auto run = sim::run_to_silence(cp.protocol, {5});
  EXPECT_TRUE(run.silent);
  EXPECT_GT(run.steps, 0u);
  EXPECT_TRUE(run.final_output.exactly_one());
  EXPECT_FALSE(run.final_output.subset_of_zero());
}

TEST(RunToSilence, Example41RejectsImmediately) {
  // x < n: the initial configuration is already silent and all-zero.
  const auto cp = core::example_4_1(3);
  const auto run = sim::run_to_silence(cp.protocol, {2});
  EXPECT_TRUE(run.silent);
  EXPECT_EQ(run.steps, 0u);
  EXPECT_TRUE(run.final_output.subset_of_zero());
}

TEST(RunToSilence, StepBudgetIsRespected) {
  const auto cp = core::unary_counting(4);
  sim::RunOptions options;
  options.max_steps = 1;
  const auto run = sim::run_to_silence(cp.protocol, {16}, options);
  EXPECT_FALSE(run.silent);
  EXPECT_EQ(run.steps, 1u);
}

TEST(RunToSilence, DeterministicForFixedSeed) {
  const auto cp = core::example_4_2(3);
  sim::RunOptions options;
  options.seed = 1234;
  const auto a = sim::run_to_silence(cp.protocol, {4}, options);
  const auto b = sim::run_to_silence(cp.protocol, {4}, options);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.final_config, b.final_config);
}

TEST(MeasureConvergence, MajorityBothSides) {
  const auto maj = core::majority();
  const auto heavy_a = sim::measure_convergence(maj, {12, 3}, 5);
  EXPECT_EQ(heavy_a.runs, 5u);
  EXPECT_EQ(heavy_a.converged, 5u);
  EXPECT_EQ(heavy_a.correct, 5u);
  EXPECT_GT(heavy_a.mean_steps, 0.0);
  EXPECT_GE(heavy_a.max_steps_observed, heavy_a.mean_steps);

  const auto heavy_b = sim::measure_convergence(maj, {3, 12}, 5);
  EXPECT_EQ(heavy_b.correct, 5u);
}

TEST(MeasureConvergence, CountingFamiliesAtThreshold) {
  for (const auto& family : core::counting_families(4)) {
    const auto above = sim::measure_convergence(family, {6}, 3);
    EXPECT_EQ(above.correct, 3u) << family.family;
    const auto below = sim::measure_convergence(family, {3}, 3);
    EXPECT_EQ(below.correct, 3u) << family.family;
  }
}

TEST(MeasureConvergence, PinnedStatsForFixedSeedOnExample41) {
  // Regression pin for the scheduler-architecture refactor: the
  // count-scheduler path must keep producing these exact statistics
  // for this seed. Example 4.1 is width n, so every run takes the
  // count path regardless of the fast-path dispatch.
  const auto cp = core::example_4_1(3);
  sim::RunOptions options;
  options.seed = 2024;
  const auto stats = sim::measure_convergence(cp, {7}, 4, options);
  EXPECT_EQ(stats.runs, 4u);
  EXPECT_EQ(stats.converged, 4u);
  EXPECT_EQ(stats.correct, 4u);
  EXPECT_DOUBLE_EQ(stats.mean_steps, 3.75);
  EXPECT_DOUBLE_EQ(stats.max_steps_observed, 4.0);
}

TEST(MeasureConvergence, EmptyPopulationIsVacuouslyCorrect) {
  // not(x >= 1) is true on the empty input, whose population is empty
  // (no leaders, no input agents): the silent empty run must score
  // correct, exactly as verify::check_input scores the same input --
  // the two engines pin one convention (vacuous = correct).
  const auto cp = core::negate(core::unary_counting(1));
  ASSERT_TRUE(cp.predicate({0}));
  ASSERT_EQ(core::Protocol::population(cp.protocol.initial_config({0})), 0);

  const auto stats = sim::measure_convergence(cp, {0}, 3);
  EXPECT_EQ(stats.converged, 3u);
  EXPECT_EQ(stats.correct, 3u);

  const auto verdict = ppsc::verify::check_input(cp.protocol, cp.predicate,
                                                 {0});
  EXPECT_TRUE(verdict.ok);
}

TEST(OutputSummary, UnanimousMatchesConsensusAndIsVacuous) {
  sim::OutputSummary empty;
  EXPECT_TRUE(empty.unanimous(true));
  EXPECT_TRUE(empty.unanimous(false));
  sim::OutputSummary ones;
  ones.has_one = true;
  EXPECT_TRUE(ones.unanimous(true));
  EXPECT_FALSE(ones.unanimous(false));
  sim::OutputSummary mixed;
  mixed.has_one = mixed.has_zero = true;
  EXPECT_FALSE(mixed.unanimous(true));
  EXPECT_FALSE(mixed.unanimous(false));
}

TEST(RunToSilence, WideTransitionsAlwaysReachExactSilence) {
  // Width-5 binomial weights are not exactly representable (their
  // computation divides by 3 and 5), so an accumulated total drifts
  // away from zero; silence must be detected from the exact
  // per-transition weights or runs fire disabled transitions and
  // drive counts negative. Regression over many seeds.
  const auto cp = core::example_4_1(5);
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    sim::RunOptions options;
    options.seed = seed;
    options.max_steps = 1000000;
    const auto run = sim::run_to_silence(cp.protocol, {31}, options);
    ASSERT_TRUE(run.silent) << "seed " << seed;
    for (core::Count count : run.final_config) {
      ASSERT_GE(count, 0) << "seed " << seed;
    }
  }
  // Large populations make the early totals huge (~C(400,5)); the
  // drift bound and the debug assert must both be relative to that
  // peak, not to the shrunken totals near silence.
  sim::RunOptions options;
  options.max_steps = 1000000;
  const auto big = sim::run_to_silence(cp.protocol, {400}, options);
  ASSERT_TRUE(big.silent);
  for (core::Count count : big.final_config) {
    ASSERT_GE(count, 0);
  }
}

TEST(RunToSilence, IncrementalWeightsMatchBruteForce) {
  // The weight cache must not change trajectories: replay Example 4.2
  // step-for-step and compare against an independent run with the same
  // seed, plus the known exact silent outcome.
  const auto cp = core::example_4_2(3);
  sim::RunOptions options;
  options.seed = 12345;
  const auto a = sim::run_to_silence(cp.protocol, {5}, options);
  const auto b = sim::run_to_silence(cp.protocol, {5}, options);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.final_config, b.final_config);
  EXPECT_TRUE(a.silent);
  EXPECT_TRUE(a.final_output.unanimous(true));  // 5 >= 3
}

TEST(CensusTrace, GeometricScheduleAndConservation) {
  const auto cp = core::unary_counting(4);
  const auto trace =
      sim::record_census_trace(cp.protocol, {32}, 1000000, /*seed=*/11);
  EXPECT_TRUE(trace.converged);
  ASSERT_FALSE(trace.points.empty());
  EXPECT_EQ(trace.points.front().step, 0u);
  EXPECT_EQ(trace.points.back().step, trace.total_steps);
  std::uint64_t previous = 0;
  bool first = true;
  for (const auto& point : trace.points) {
    if (!first) {
      EXPECT_GT(point.step, previous);
    }
    previous = point.step;
    first = false;
    // The output census partitions the (conserved) population.
    EXPECT_EQ(point.output_zero + point.output_one + point.output_star, 32);
    EXPECT_EQ(core::Protocol::population(point.census), 32);
    EXPECT_EQ(point.output_star, 0);
  }
  // 32 >= 4: an accepting run ends in unanimous 1-consensus.
  EXPECT_EQ(trace.points.back().output_zero, 0);
  EXPECT_EQ(trace.points.back().output_one, 32);
}

TEST(CensusTrace, CountSchedulerFallback) {
  // Width-n nets cannot compile to a pair table; the trace must fall
  // back to the count scheduler and still converge.
  const auto cp = core::example_4_1(3);
  const auto trace =
      sim::record_census_trace(cp.protocol, {5}, 1000000, /*seed=*/3);
  EXPECT_TRUE(trace.converged);
  EXPECT_EQ(trace.points.back().output_one, 5);
  EXPECT_EQ(trace.points.back().output_zero, 0);
}

TEST(TablePrinter, AlignsAndPads) {
  ppsc::util::TablePrinter table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer"});
  EXPECT_EQ(table.to_string(),
            "name    value\n"
            "-------------\n"
            "x       1\n"
            "longer  \n");
  EXPECT_THROW(table.add_row({"a", "b", "c"}), std::invalid_argument);
}

TEST(FormatDouble, SignificantDigits) {
  EXPECT_EQ(ppsc::util::format_double(3.14159, 3), "3.14");
  EXPECT_EQ(ppsc::util::format_double(1234567.0, 4), "1.235e+06");
  EXPECT_EQ(ppsc::util::format_double(0.0, 3), "0");
}

TEST(Xoshiro, DeterministicAndBounded) {
  ppsc::util::Xoshiro256 a(42);
  ppsc::util::Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  ppsc::util::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}
