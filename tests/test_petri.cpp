// The petri/ engines against hand-computed nets: coverability bases,
// Karp-Miller omega-markings, Theorem 6.1 bottom witnesses, control
// nets with Euler total cycles, and the width-2 compilation -- each
// with a negative case.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/constructions.h"
#include "petri/bottom.h"
#include "petri/control_net.h"
#include "petri/coverability.h"
#include "petri/euler.h"
#include "petri/karp_miller.h"
#include "petri/reachability.h"
#include "petri/width_reduction.h"

namespace petri = ppsc::petri;
using petri::Config;
using petri::PetriNet;

namespace {

// a -> b -> c chain.
PetriNet chain3() {
  PetriNet net(3);
  net.add(Config{1, 0, 0}, Config{0, 1, 0});
  net.add(Config{0, 1, 0}, Config{0, 0, 1});
  return net;
}

// a <-> b toggle.
PetriNet toggle() {
  PetriNet net(2);
  net.add(Config{1, 0}, Config{0, 1});
  net.add(Config{0, 1}, Config{1, 0});
  return net;
}

// a -> a + b pump (non-conservative).
PetriNet pump() {
  PetriNet net(2);
  net.add(Config{1, 0}, Config{1, 1});
  return net;
}

// Toggle on {a, b} plus a pump a -> a + c.
PetriNet toggle_pump() {
  PetriNet net(3);
  net.add(Config{1, 0, 0}, Config{0, 1, 0});
  net.add(Config{0, 1, 0}, Config{1, 0, 0});
  net.add(Config{1, 0, 0}, Config{1, 0, 1});
  return net;
}

}  // namespace

TEST(PetriConfig, UnitRestrictAndNorms) {
  const Config u = Config::unit(4, 2, 5);
  EXPECT_EQ(u, (Config{0, 0, 5, 0}));
  EXPECT_EQ(u.norm_inf(), 5);
  EXPECT_EQ(u.total(), 5);
  EXPECT_TRUE(u.covers(Config{0, 0, 3, 0}));
  EXPECT_FALSE(u.covers(Config{1, 0, 0, 0}));
  EXPECT_EQ(u.restrict({false, true, true, false}), (Config{0, 5}));
}

TEST(PetriNet, AdapterFromCoreNet) {
  const auto cp = ppsc::core::example_4_2(3);
  const PetriNet net(cp.protocol.net());
  EXPECT_EQ(net.num_states(), cp.protocol.num_states());
  EXPECT_EQ(net.num_transitions(), cp.protocol.net().num_transitions());
  EXPECT_EQ(net.max_width(), cp.protocol.width());
  EXPECT_EQ(net.norm_inf(), 2);  // rally produces F + F
}

TEST(PetriNet, RestrictKeepsOnlySupportedTransitions) {
  // Restricting toggle_pump to {a, b} drops the pump (it touches c).
  const PetriNet restricted = toggle_pump().restrict({true, true, false});
  EXPECT_EQ(restricted.num_states(), 2u);
  EXPECT_EQ(restricted.num_transitions(), 2u);
  // Projection keeps all three, truncated; indices preserved.
  const PetriNet projected = toggle_pump().project({true, true, false});
  EXPECT_EQ(projected.num_transitions(), 3u);
  EXPECT_EQ(projected.transition(2).pre, (Config{1, 0}));
  EXPECT_EQ(projected.transition(2).post, (Config{1, 0}));
}

TEST(Explore, FiniteGraphIsExact) {
  const auto graph = petri::explore(chain3(), {Config{2, 0, 0}});
  EXPECT_FALSE(graph.truncated);
  // Multisets of 2 tokens over the chain: (2,0,0) reaches all 6.
  EXPECT_EQ(graph.nodes.size(), 6u);
  const auto silent = graph.find(Config{0, 0, 2});
  ASSERT_TRUE(silent.has_value());
  const auto word = graph.word_to(*silent);
  EXPECT_EQ(word.size(), 4u);
  EXPECT_EQ(petri::fire_word(chain3(), Config{2, 0, 0}, word),
            (Config{0, 0, 2}));
}

TEST(Explore, TruncatesPumpingNets) {
  petri::ExploreLimits limits;
  limits.max_nodes = 50;
  const auto graph = petri::explore(pump(), {Config{1, 0}}, limits);
  EXPECT_TRUE(graph.truncated);
  EXPECT_EQ(graph.nodes.size(), 50u);
}

TEST(Coverability, BackwardBasisIsMinimal) {
  // Net a -> b, target one b: basis is {b:1} plus {a:1}.
  PetriNet net(2);
  net.add(Config{1, 0}, Config{0, 1});
  const auto basis = petri::backward_basis(net, Config{0, 1});
  ASSERT_EQ(basis.size(), 2u);
  EXPECT_NE(std::find(basis.begin(), basis.end(), Config{0, 1}), basis.end());
  EXPECT_NE(std::find(basis.begin(), basis.end(), Config{1, 0}), basis.end());
}

TEST(Coverability, PositiveAndNegative) {
  const PetriNet net = chain3();
  EXPECT_TRUE(petri::coverable(net, Config{3, 0, 0}, Config{0, 0, 3}));
  EXPECT_TRUE(petri::coverable(net, Config{1, 1, 1}, Config{0, 0, 2}));
  // Chains conserve tokens: 2 tokens never cover 3.
  EXPECT_FALSE(petri::coverable(net, Config{2, 0, 0}, Config{0, 0, 3}));
  // The pump makes b unbounded but never grows a.
  EXPECT_TRUE(petri::coverable(pump(), Config{1, 0}, Config{1, 7}));
  EXPECT_FALSE(petri::coverable(pump(), Config{1, 0}, Config{2, 0}));
}

TEST(Coverability, ShortestWordIsExact) {
  const PetriNet net = chain3();
  const auto result = petri::shortest_covering_word(net, Config{1, 0, 0},
                                                    Config{0, 0, 1}, 1000);
  ASSERT_TRUE(result.word.has_value());
  EXPECT_EQ(*result.word, (std::vector<std::size_t>{0, 1}));
  // Already covered: empty word.
  const auto trivial =
      petri::shortest_covering_word(net, Config{0, 0, 1}, Config{0, 0, 1}, 10);
  ASSERT_TRUE(trivial.word.has_value());
  EXPECT_TRUE(trivial.word->empty());
  // Uncoverable in a finite net: no word, not truncated.
  const auto missing = petri::shortest_covering_word(net, Config{1, 0, 0},
                                                     Config{0, 0, 2}, 1000);
  EXPECT_FALSE(missing.word.has_value());
  EXPECT_FALSE(missing.truncated);
}

TEST(KarpMiller, AcceleratesPumpToOmega) {
  const auto km = petri::karp_miller(pump(), Config{1, 0}, 1000);
  EXPECT_FALSE(km.truncated);
  EXPECT_TRUE(km.covers(Config{1, 1000000}));
  EXPECT_FALSE(km.covers(Config{2, 0}));
  bool has_omega = false;
  for (std::size_t n = 0; n < km.nodes.size(); ++n) {
    const auto finite = km.finite_places(n);
    if (!finite[1]) has_omega = true;
    EXPECT_TRUE(finite[0]) << "place a must stay finite";
  }
  EXPECT_TRUE(has_omega);
}

TEST(KarpMiller, FiniteNetsGetNoOmega) {
  const auto km = petri::karp_miller(toggle(), Config{2, 0}, 1000);
  EXPECT_FALSE(km.truncated);
  EXPECT_EQ(km.nodes.size(), 3u);  // (2,0), (1,1), (0,2)
  EXPECT_TRUE(km.covers(Config{0, 2}));
  EXPECT_FALSE(km.covers(Config{3, 0}));
}

TEST(KarpMiller, AgreesWithBackwardCoverability) {
  // Every engine answers the same queries on toggle_pump.
  const PetriNet net = toggle_pump();
  const Config source{1, 0, 0};
  const auto km = petri::karp_miller(net, source, 10000);
  ASSERT_FALSE(km.truncated);
  const std::vector<Config> targets = {
      Config{1, 0, 0}, Config{0, 1, 0}, Config{1, 1, 0}, Config{0, 0, 5},
      Config{1, 0, 9}, Config{2, 0, 0}, Config{0, 1, 3},
  };
  for (const Config& target : targets) {
    EXPECT_EQ(petri::coverable(net, source, target), km.covers(target))
        << "target " << target[0] << "," << target[1] << "," << target[2];
  }
}

TEST(Bottom, FiniteNetWitness) {
  // chain a -> b from 3 a's: the unique bottom configuration is (0,3).
  PetriNet net(2);
  net.add(Config{1, 0}, Config{0, 1});
  const auto witness = petri::find_bottom_witness(net, Config{3, 0});
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->sigma.size(), 3u);
  EXPECT_TRUE(witness->w.empty());
  EXPECT_EQ(witness->alpha, (Config{0, 3}));
  EXPECT_EQ(witness->component_size, 1u);
  EXPECT_EQ(witness->q_mask, std::vector<bool>({true, true}));
  EXPECT_TRUE(petri::check_bottom_witness(net, Config{3, 0}, *witness));
}

TEST(Bottom, ToggleComponentIsWholeGraph) {
  const auto witness = petri::find_bottom_witness(toggle(), Config{3, 0});
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->sigma.empty());  // rho itself is bottom
  EXPECT_EQ(witness->component_size, 4u);
  EXPECT_TRUE(petri::check_bottom_witness(toggle(), Config{3, 0}, *witness));
}

TEST(Bottom, PumpingWitnessHasProperQAndW) {
  petri::ExploreLimits limits;
  limits.max_nodes = 5000;
  const auto witness =
      petri::find_bottom_witness(pump(), Config{1, 0}, limits);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->q_mask, std::vector<bool>({true, false}));
  ASSERT_FALSE(witness->w.empty());
  EXPECT_GT(witness->beta[1], witness->alpha[1]);
  EXPECT_EQ(witness->beta[0], witness->alpha[0]);
  EXPECT_TRUE(petri::check_bottom_witness(pump(), Config{1, 0}, *witness,
                                          limits));
}

TEST(Bottom, CorruptedWitnessesAreRejected) {
  petri::ExploreLimits limits;
  limits.max_nodes = 5000;
  const PetriNet net = toggle_pump();
  const Config rho{1, 0, 0};
  const auto witness = petri::find_bottom_witness(net, rho, limits);
  ASSERT_TRUE(witness.has_value());
  ASSERT_TRUE(petri::check_bottom_witness(net, rho, *witness, limits));
  {
    auto bad = *witness;
    bad.sigma.push_back(0);  // replay no longer lands on alpha
    EXPECT_FALSE(petri::check_bottom_witness(net, rho, bad, limits));
  }
  {
    auto bad = *witness;
    bad.component_size += 1;
    EXPECT_FALSE(petri::check_bottom_witness(net, rho, bad, limits));
  }
  {
    auto bad = *witness;
    bad.q_mask.assign(3, true);  // claims the pump place is bounded
    EXPECT_FALSE(petri::check_bottom_witness(net, rho, bad, limits));
  }
}

TEST(Bottom, ComponentOfToggleRestriction) {
  const auto component =
      petri::component_of(toggle(), Config{2, 1});
  EXPECT_TRUE(component.closed);
  EXPECT_EQ(component.members.size(), 4u);
  // A chain's start is its own SCC but not closed.
  PetriNet net(2);
  net.add(Config{1, 0}, Config{0, 1});
  const auto open = petri::component_of(net, Config{1, 0});
  EXPECT_EQ(open.members.size(), 1u);
  EXPECT_FALSE(open.closed);
}

TEST(ControlNet, TotalCycleCoversEveryEdge) {
  // Triangle with an extra chord 0 -> 1.
  PetriNet base(1);
  base.add(Config{0}, Config{0});
  petri::ControlStateNet cnet(base, 3);
  cnet.add_edge(0, 0, 1);
  cnet.add_edge(1, 0, 2);
  cnet.add_edge(2, 0, 0);
  cnet.add_edge(0, 0, 1);
  ASSERT_TRUE(cnet.strongly_connected());
  const auto cycle = cnet.total_cycle(0);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_TRUE(cnet.is_cycle(*cycle, 0));
  EXPECT_LE(cycle->size(), cnet.num_edges() * cnet.num_controls());
  for (std::uint64_t count : cnet.parikh(*cycle)) {
    EXPECT_GE(count, 1u);
  }
}

TEST(ControlNet, NotStronglyConnectedHasNoTotalCycle) {
  PetriNet base(1);
  base.add(Config{0}, Config{0});
  petri::ControlStateNet cnet(base, 2);
  cnet.add_edge(0, 0, 1);  // no way back
  EXPECT_FALSE(cnet.strongly_connected());
  EXPECT_FALSE(cnet.total_cycle(0).has_value());
}

TEST(ControlNet, FromComponentOfTogglePump) {
  // Q = {a, b}: controls are (1,0) and (0,1); the pump contributes a
  // self-loop at (1,0) whose underlying effect creates one c.
  const PetriNet net = toggle_pump();
  const std::vector<bool> q_mask{true, true, false};
  const auto component = petri::component_of(net.restrict(q_mask),
                                             Config{1, 0});
  ASSERT_TRUE(component.closed);
  ASSERT_EQ(component.members.size(), 2u);
  const auto cnet =
      petri::ControlStateNet::from_component(net, component.members, q_mask);
  EXPECT_EQ(cnet.num_controls(), 2u);
  EXPECT_EQ(cnet.num_edges(), 3u);
  EXPECT_TRUE(cnet.strongly_connected());
  EXPECT_EQ(cnet.net().num_states(), 1u);
  const auto cycle = cnet.total_cycle(0);
  ASSERT_TRUE(cycle.has_value());
  const auto displacement = cnet.displacement(cnet.parikh(*cycle));
  EXPECT_GT(displacement[0], 0);  // the walk pumps c
}

TEST(Euler, CircuitAndNegatives) {
  const std::vector<std::pair<std::size_t, std::size_t>> edges = {
      {0, 1}, {1, 0}, {0, 0}};
  const auto circuit = petri::euler_circuit(2, edges, {2, 2, 1}, 0);
  ASSERT_TRUE(circuit.has_value());
  EXPECT_EQ(circuit->size(), 5u);
  // Unbalanced multiset: no circuit.
  EXPECT_FALSE(petri::euler_circuit(2, edges, {2, 1, 0}, 0).has_value());
  // Disconnected used edges: no circuit.
  const std::vector<std::pair<std::size_t, std::size_t>> split = {
      {0, 0}, {1, 1}};
  EXPECT_FALSE(petri::euler_circuit(2, split, {1, 1}, 0).has_value());
}

TEST(WidthReduction, HandNetCompilesToWidth2) {
  // One width-3 transition: 2a + b -> c.
  PetriNet net(3);
  net.add(Config{2, 1, 0}, Config{0, 0, 1});
  const auto reduction = petri::widen_to_width2(net);
  EXPECT_EQ(reduction.compiled.num_states(), 4u);  // 3 originals + 1 collector
  EXPECT_EQ(reduction.compiled.num_transitions(), 2u);
  EXPECT_EQ(reduction.compiled.max_width(), 2);
  const Config root{2, 1, 0};
  EXPECT_EQ(reduction.project(reduction.embed(root)), root);
  // Rolling back a half-gathered marking returns the two a tokens.
  Config half(4);
  half[1] = 1;
  half[3] = 1;  // collector holding {a, a}
  EXPECT_EQ(reduction.project(reduction.cleanup(half)), (Config{2, 1, 0}));
}

TEST(WidthReduction, Example41IsProjectionEquivalent) {
  const auto cp = ppsc::core::example_4_1(3);
  const PetriNet net(cp.protocol.net());
  EXPECT_GT(net.max_width(), 2);
  const auto reduction = petri::widen_to_width2(net);
  EXPECT_EQ(reduction.compiled.max_width(), 2);

  const Config root{4, 0};  // above threshold
  std::set<std::vector<petri::Count>> original;
  for (const auto& node : petri::explore(net, {root}).nodes) {
    original.insert(node.raw());
  }
  std::set<std::vector<petri::Count>> compiled;
  for (const auto& node :
       petri::explore(reduction.compiled, {reduction.embed(root)}).nodes) {
    compiled.insert(reduction.project(reduction.cleanup(node)).raw());
  }
  EXPECT_EQ(original, compiled);
}

TEST(WidthReduction, NarrowNetsPassThrough) {
  const PetriNet net = toggle();
  const auto reduction = petri::widen_to_width2(net);
  EXPECT_EQ(reduction.compiled.num_states(), net.num_states());
  EXPECT_EQ(reduction.compiled.num_transitions(), net.num_transitions());
  EXPECT_TRUE(reduction.collector_contents.empty());
}

TEST(ConfigHash, PermutedSmallMarkingsDoNotCollide) {
  // Markings are dominated by 0/1 counts; folding them raw left most
  // of the hash state untouched and collided permutations. With the
  // splitmix64 mixing every 0/1 marking of a small dimension must hash
  // distinctly (deterministic: the hash has no per-process salt).
  const petri::ConfigHash hash;
  std::set<std::size_t> seen;
  const std::size_t dimension = 6;
  for (unsigned mask = 0; mask < (1u << dimension); ++mask) {
    Config config(dimension);
    for (std::size_t p = 0; p < dimension; ++p) {
      config[p] = (mask >> p) & 1u;
    }
    seen.insert(hash(config));
  }
  EXPECT_EQ(seen.size(), 1u << dimension);
}

TEST(ConfigHash, SmallCountPlacementsDoNotCollide) {
  // All placements of a single count 1..4 across 5 places, plus the
  // zero marking: pairwise distinct.
  const petri::ConfigHash hash;
  std::set<std::size_t> seen;
  std::size_t inserted = 0;
  seen.insert(hash(Config(5)));
  ++inserted;
  for (std::size_t p = 0; p < 5; ++p) {
    for (petri::Count k = 1; k <= 4; ++k) {
      seen.insert(hash(Config::unit(5, p, k)));
      ++inserted;
    }
  }
  EXPECT_EQ(seen.size(), inserted);
}
