#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "bounds/biguint.h"

using ppsc::bounds::BigUint;

TEST(BigUint, SmallValuesRoundTrip) {
  EXPECT_EQ(BigUint().to_string(), "0");
  EXPECT_EQ(BigUint(0).to_string(), "0");
  EXPECT_EQ(BigUint(1).to_string(), "1");
  EXPECT_EQ(BigUint(999999999).to_string(), "999999999");
  EXPECT_EQ(BigUint(1000000000).to_string(), "1000000000");
  EXPECT_EQ(BigUint(18446744073709551615ull).to_string(),
            "18446744073709551615");
}

TEST(BigUint, Multiplication) {
  EXPECT_EQ((BigUint(123456789) * BigUint(987654321)).to_string(),
            "121932631112635269");
  // (2^64 - 1)^2 = 340282366920938463426481119284349108225.
  BigUint max64(18446744073709551615ull);
  EXPECT_EQ((max64 * max64).to_string(),
            "340282366920938463426481119284349108225");
  EXPECT_TRUE((BigUint(7) * BigUint()).is_zero());
}

TEST(BigUint, PowersOfTwo) {
  EXPECT_EQ(BigUint::two_pow(0).to_string(), "1");
  EXPECT_EQ(BigUint::two_pow(10).to_string(), "1024");
  EXPECT_EQ(BigUint::two_pow(100).to_string(), "1267650600228229401496703205376");
  EXPECT_EQ(BigUint::two_pow(10).bit_length(), 11u);
  EXPECT_THROW(BigUint::two_pow(1ull << 40), std::overflow_error);
}

TEST(BigUint, GeneralPow) {
  EXPECT_EQ(BigUint::pow(10, 0).to_string(), "1");
  EXPECT_EQ(BigUint::pow(10, 20).to_string(), "100000000000000000000");
  EXPECT_EQ(BigUint::pow(3, 40).to_string(), "12157665459056928801");
}

TEST(BigUint, Digits10AndLog2) {
  EXPECT_EQ(BigUint().digits10(), 1u);
  EXPECT_EQ(BigUint(7).digits10(), 1u);
  EXPECT_EQ(BigUint::pow(10, 20).digits10(), 21u);
  EXPECT_EQ(BigUint::two_pow(65536).digits10(), 19729u);
  EXPECT_DOUBLE_EQ(BigUint::two_pow(65536).log2(), 65536.0);
  EXPECT_NEAR(BigUint(1000).log2(), std::log2(1000.0), 1e-12);
  EXPECT_NEAR(BigUint::pow(10, 20).log2(), 20.0 * std::log2(10.0), 1e-9);
}
