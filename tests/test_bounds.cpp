// Pins the bound formulas to hand-computed values at the E10 table rows
// n = 10^3, 10^6 and 10^100 (log2 n = 9.97, 19.93, 332.2), so the
// numeric contract printed by the benches is a regression gate.

#include <gtest/gtest.h>

#include <cmath>

#include "bounds/ackermann.h"
#include "bounds/formulas.h"

namespace bounds = ppsc::bounds;

TEST(Corollary44, HandComputedRows) {
  // (log2 log2 n)^h / m, h = 0.49, m = 2.
  // log2(9.97) = 3.3175935..., 3.3175935^0.49 = 1.799713...
  EXPECT_NEAR(bounds::corollary44_lower_bound(9.97, 2, 0.49), 0.899857,
              1e-5);
  // log2(19.93) = 4.3168698..., ^0.49 = 2.0475418...
  EXPECT_NEAR(bounds::corollary44_lower_bound(19.93, 2, 0.49), 1.023771,
              1e-5);
  // log2(332.2) = 8.3759083..., ^0.49 = 2.8332548...
  EXPECT_NEAR(bounds::corollary44_lower_bound(332.2, 2, 0.49), 1.416627,
              1e-5);
}

TEST(Corollary44, QuarterExponentAndEdgeCases) {
  // h = 0.25 at n = 10^100: 8.3759083^0.25 = 1.7012102...
  EXPECT_NEAR(bounds::corollary44_lower_bound(332.2, 2, 0.25), 0.850605,
              1e-5);
  EXPECT_EQ(bounds::corollary44_lower_bound(1.0, 2, 0.49), 0.0);
  EXPECT_EQ(bounds::corollary44_lower_bound(0.5, 2, 0.49), 0.0);
}

TEST(Theorem43MinStates, InvertsTheBound) {
  // ceil(sqrt(log2 log2 n / log2 m)) with m = 2.
  EXPECT_EQ(bounds::theorem43_min_states(9.97, 2), 2);    // sqrt(3.3176)=1.821
  EXPECT_EQ(bounds::theorem43_min_states(19.93, 2), 3);   // sqrt(4.3169)=2.078
  EXPECT_EQ(bounds::theorem43_min_states(332.2, 2), 3);   // sqrt(8.3759)=2.894
  EXPECT_EQ(bounds::theorem43_min_states(1e9, 2), 6);     // sqrt(29.897)=5.47
  EXPECT_EQ(bounds::theorem43_min_states(1e15, 2), 8);    // sqrt(49.828)=7.06
  EXPECT_EQ(bounds::theorem43_min_states(0.5, 2), 1);
}

TEST(Theorem43MinStates, ConsistentWithExactBound) {
  // For every small d, the inversion maps the exact bound back to d.
  for (long long d = 2; d <= 4; ++d) {
    const double log2_bound = bounds::log2_theorem43_bound(2, 2, d);
    EXPECT_EQ(bounds::theorem43_min_states(log2_bound, 2), d) << "d=" << d;
    EXPECT_GT(bounds::theorem43_min_states(log2_bound * 1.01, 2), d)
        << "d=" << d;
  }
}

TEST(Theorem43Bound, ExactSmallInstances) {
  // m = max(2, w, L); bound = 2^(m^(d^2)).
  EXPECT_EQ(bounds::theorem43_bound(2, 2, 1).to_string(), "4");       // 2^2
  EXPECT_EQ(bounds::theorem43_bound(2, 2, 2).to_string(), "65536");   // 2^16
  EXPECT_EQ(bounds::theorem43_bound(1, 0, 2).to_string(), "65536");   // m=2
  // w=3: 2^(3^4) = 2^81, 25 decimal digits.
  EXPECT_EQ(bounds::theorem43_bound(3, 2, 2).digits10(), 25u);
  EXPECT_DOUBLE_EQ(bounds::theorem43_bound(3, 2, 2).log2(), 81.0);
}

TEST(Theorem43Bound, LogSpaceAgreesWithExact) {
  // The E10 cross-check: d=4, w=2, L=2 gives 2^65536.
  const auto exact = bounds::theorem43_bound(2, 2, 4);
  EXPECT_EQ(exact.digits10(), 19729u);
  EXPECT_DOUBLE_EQ(exact.log2(), 65536.0);
  EXPECT_DOUBLE_EQ(bounds::log2_theorem43_bound(2, 2, 4), 65536.0);
}

TEST(BejShapes, LogAndLogLog) {
  EXPECT_NEAR(bounds::bej_loglog_states(9.97), 3.3175935, 1e-5);
  EXPECT_NEAR(bounds::bej_loglog_states(332.2), 8.3759083, 1e-5);
  EXPECT_EQ(bounds::bej_loglog_states(1.0), 0.0);
  EXPECT_DOUBLE_EQ(bounds::bej_log_states(332.2), 332.2);
}

TEST(InverseAckermann, FrozenAtThree) {
  // Largest k with A(k) <= n: A(1)=3, A(2)=7, A(3)=61.
  EXPECT_EQ(bounds::inverse_ackermann_log2(std::log2(3.0)), 1);
  EXPECT_EQ(bounds::inverse_ackermann_log2(std::log2(6.9)), 1);
  EXPECT_EQ(bounds::inverse_ackermann_log2(std::log2(7.0)), 2);
  EXPECT_EQ(bounds::inverse_ackermann_log2(std::log2(60.9)), 2);
  EXPECT_EQ(bounds::inverse_ackermann_log2(std::log2(61.0)), 3);
  // The E10 rows: 10^3, 10^6, 10^100, 2^(10^15) -- all frozen at 3.
  EXPECT_EQ(bounds::inverse_ackermann_log2(9.97), 3);
  EXPECT_EQ(bounds::inverse_ackermann_log2(19.93), 3);
  EXPECT_EQ(bounds::inverse_ackermann_log2(332.2), 3);
  EXPECT_EQ(bounds::inverse_ackermann_log2(1e15), 3);
}
